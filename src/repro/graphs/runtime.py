"""Graph memory layout and traffic-emitting runtime.

The kernels in :mod:`repro.graphs.kernels` are *real* algorithms over
CSR arrays; this module makes their memory behaviour observable.  A
:class:`GraphLayout` assigns every array (CSR structure plus per-node
property arrays) a line-address range in the simulated physical space;
a :class:`GraphRuntime` turns the index sets a kernel touches into LLC
request batches against a memory backend.

Modelling choices:

* Sequential scans (the indices array during a full edge pass) issue
  one read per line in address order.
* Random gathers/scatters (property lookups indexed by neighbor id)
  deduplicate repeated lines within a batch — the on-chip cache absorbs
  repeats at that timescale — and issue the rest as random accesses.
* Property updates use standard stores: an ownership read followed by a
  write-back, which in 2LM dirties the corresponding DRAM-cache lines
  (the mutation pathology of Section VI-D).
* ``edge_stride`` samples one in N edge-indexed accesses and weights the
  recorded traffic by N, for affordable simulation of big inputs.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.config import BATCH_LINES
from repro.errors import ConfigurationError
from repro.graphs.csr import CSRGraph
from repro.memsys.backends import MemoryBackend
from repro.perf.counters import AccessContext, AccessKind, Pattern
from repro.perf.sampler import CounterSampler

_BATCH_LINES = BATCH_LINES


@dataclass(frozen=True)
class _ArrayExtent:
    start_line: int
    num_lines: int
    elem_bytes: int


class GraphLayout:
    """Line-address layout of the CSR arrays and node property arrays."""

    def __init__(self, csr: CSRGraph, base_line: int = 0, line_size: int = 64) -> None:
        self.csr = csr
        self.line_size = line_size
        self._extents: Dict[str, _ArrayExtent] = {}
        self._cursor = base_line
        self._add("indptr", csr.num_nodes + 1, 8)
        self._add("indices", csr.num_edges, 4)

    def _add(self, name: str, elements: int, elem_bytes: int) -> _ArrayExtent:
        if name in self._extents:
            raise ConfigurationError(f"array {name!r} already placed")
        num_lines = max(1, -(-elements * elem_bytes // self.line_size))
        extent = _ArrayExtent(self._cursor, num_lines, elem_bytes)
        self._extents[name] = extent
        self._cursor += num_lines
        return extent

    def add_property(self, name: str, elem_bytes: int = 8) -> None:
        """Place a per-node property array (dist, label, rank, ...).

        Idempotent: re-registering an identically shaped property (e.g.
        running the same kernel twice) reuses the existing extent.
        """
        existing = self._extents.get(name)
        if existing is not None:
            if existing.elem_bytes != elem_bytes:
                raise ConfigurationError(
                    f"property {name!r} re-registered with different element size"
                )
            return
        self._add(name, self.csr.num_nodes, elem_bytes)

    @property
    def total_lines(self) -> int:
        return self._cursor

    def extent(self, name: str) -> _ArrayExtent:
        return self._extents[name]

    def array_lines(self, name: str) -> Tuple[int, int]:
        """(first line, line count) of a whole array."""
        e = self._extents[name]
        return e.start_line, e.num_lines

    def element_lines(self, name: str, idx: np.ndarray) -> np.ndarray:
        """Line addresses of elements ``idx`` within array ``name``."""
        e = self._extents[name]
        return e.start_line + (idx.astype(np.int64) * e.elem_bytes) // self.line_size


class GraphRuntime:
    """Accounts a kernel's memory traffic against a backend.

    Kernels call the traffic methods with the *actual* index sets their
    numpy compute touches, inside a per-round :meth:`round` epoch.
    """

    def __init__(
        self,
        backend: MemoryBackend,
        layout: GraphLayout,
        *,
        threads: int = 96,
        sockets: int = 2,
        edge_stride: int = 1,
        sampler: Optional[CounterSampler] = None,
    ) -> None:
        if edge_stride < 1:
            raise ConfigurationError("edge_stride must be >= 1")
        self.backend = backend
        self.layout = layout
        self.edge_stride = edge_stride
        self.sampler = sampler
        self._rounds_run = 0
        self.ctx = AccessContext(
            threads=threads, pattern=Pattern.RANDOM, granularity=64, sockets=sockets
        )

    # -- epochs -------------------------------------------------------------

    @contextlib.contextmanager
    def round(self, label: Optional[str] = None):
        """One kernel round: an overlapped-execution epoch.

        When telemetry is enabled the round gets its own span, so graph
        traces show per-iteration structure above the epoch level.
        """
        self._rounds_run += 1
        tele = obs.get()
        if tele.enabled:
            with tele.span(
                "graphs.round",
                cat="graphs",
                clock=lambda: self.backend.counters.time,
                label=label or f"round_{self._rounds_run}",
            ):
                with self.backend.epoch(self.ctx) as epoch:
                    yield epoch
            tele.counter(
                "repro_graph_rounds_total", "graph kernel rounds executed"
            ).inc()
        else:
            with self.backend.epoch(self.ctx) as epoch:
                yield epoch

    def sample(self, label: str) -> None:
        if self.sampler is not None:
            self.sampler.sample(label=label)

    # -- traffic ---------------------------------------------------------------

    def _issue(self, lines: np.ndarray, kind: AccessKind, weight: int) -> None:
        for begin in range(0, lines.size, _BATCH_LINES):
            self.backend.access(
                lines[begin : begin + _BATCH_LINES], kind, self.ctx, weight=weight
            )

    def sequential_read(self, name: str, idx: Optional[np.ndarray] = None) -> None:
        """Stream an array (or the lines covering ``idx``) in order."""
        if idx is None:
            start, count = self.layout.array_lines(name)
            lines = start + np.arange(0, count, self.edge_stride, dtype=np.int64)
            weight = self.edge_stride
        else:
            lines, weight = self._sampled_lines(name, idx, dedupe=True)
            lines.sort()
        self._issue(lines, AccessKind.LLC_READ, weight)

    def gather(self, name: str, idx: np.ndarray) -> None:
        """Random reads of ``array[idx]``."""
        lines, weight = self._sampled_lines(name, idx, dedupe=True)
        self._issue(lines, AccessKind.LLC_READ, weight)

    def scatter(self, name: str, idx: np.ndarray) -> None:
        """Random read-modify-writes of ``array[idx]`` (standard stores)."""
        lines, weight = self._sampled_lines(name, idx, dedupe=True)
        self._issue(lines, AccessKind.LLC_READ, weight)
        self._issue(lines, AccessKind.LLC_WRITE, weight)

    def stream_write(self, name: str) -> None:
        """Sequential full-array overwrite (e.g. swapping rank buffers)."""
        start, count = self.layout.array_lines(name)
        lines = start + np.arange(0, count, self.edge_stride, dtype=np.int64)
        self._issue(lines, AccessKind.LLC_READ, self.edge_stride)  # RFO
        self._issue(lines, AccessKind.LLC_WRITE, self.edge_stride)

    def _sampled_lines(
        self, name: str, idx: np.ndarray, dedupe: bool
    ) -> Tuple[np.ndarray, int]:
        if self.edge_stride > 1 and idx.size > self.edge_stride:
            idx = idx[:: self.edge_stride]
            weight = self.edge_stride
        else:
            weight = 1
        lines = self.layout.element_lines(name, idx)
        if dedupe:
            # The LLC absorbs repeated touches of a hot line within a
            # round; unique lines are what reaches the IMC.
            lines = np.unique(lines)
        return lines, weight


def adjacency_positions(csr: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """Element indices into ``indices`` covering the frontier's rows."""
    starts = csr.indptr[frontier]
    lengths = csr.indptr[frontier + 1] - starts
    total = int(lengths.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    # Concatenated aranges without a Python loop.
    offsets = np.repeat(starts - np.concatenate(([0], lengths.cumsum()[:-1])), lengths)
    return offsets + np.arange(total, dtype=np.int64)
