"""Compressed sparse row graph representation.

The same layout Galois's graph-converter produces: an ``indptr`` array
of ``num_nodes + 1`` offsets and an ``indices`` array of destination
node ids, stored contiguously.  ``binary_bytes`` reports the on-disk /
in-memory footprint the paper quotes for its inputs (507 GB for wdc12,
73 GB for kron30).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CSRGraph:
    """An immutable directed graph in CSR form."""

    indptr: np.ndarray  # int64, shape (num_nodes + 1,)
    indices: np.ndarray  # int32, shape (num_edges,)

    def __post_init__(self) -> None:
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ConfigurationError("indptr and indices must be 1-D")
        if self.indptr.size < 1 or self.indptr[0] != 0:
            raise ConfigurationError("indptr must start at 0")
        if self.indptr[-1] != self.indices.size:
            raise ConfigurationError("indptr must end at num_edges")
        if np.any(np.diff(self.indptr) < 0):
            raise ConfigurationError("indptr must be non-decreasing")

    @classmethod
    def from_edges(cls, src: np.ndarray, dst: np.ndarray, num_nodes: int) -> "CSRGraph":
        """Build a CSR graph from an edge list (parallel edges kept)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ConfigurationError("src and dst must have the same length")
        if src.size and (src.min() < 0 or src.max() >= num_nodes):
            raise ConfigurationError("source node id out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_nodes):
            raise ConfigurationError("destination node id out of range")
        order = np.argsort(src, kind="stable")
        sorted_dst = dst[order].astype(np.int32)
        counts = np.bincount(src, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=sorted_dst)

    @property
    def num_nodes(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        return self.indices.size

    @property
    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def binary_bytes(self) -> int:
        """In-memory footprint of the CSR arrays."""
        return self.indptr.nbytes + self.indices.nbytes

    def neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def max_out_degree_node(self) -> int:
        """The paper's bfs source: the maximum out-degree node."""
        return int(np.argmax(self.out_degrees))

    def reversed(self) -> "CSRGraph":
        """The transpose graph (incoming adjacency)."""
        num_nodes = self.num_nodes
        src = np.repeat(np.arange(num_nodes, dtype=np.int64), self.out_degrees)
        return CSRGraph.from_edges(self.indices.astype(np.int64), src, num_nodes)
