"""Push-based PageRank.

The paper runs pagerank-push for 100 rounds with tolerance 1e-6
(Section VI-B).  Each round streams the whole edge array and scatters
contributions to the destination ranks — the mutation-heavy access
pattern whose 2LM behaviour Figure 9 dissects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.runtime import GraphRuntime

DAMPING = 0.85


@dataclass
class PageRankResult:
    ranks: np.ndarray
    rounds: int
    converged: bool
    residual: float


def pagerank_push(
    csr: CSRGraph,
    rounds: int = 100,
    tolerance: float = 1e-6,
    runtime: Optional[GraphRuntime] = None,
) -> PageRankResult:
    """Push-style PageRank over the full graph each round."""
    n = csr.num_nodes
    if runtime is not None:
        runtime.layout.add_property("pr_rank", 8)
        runtime.layout.add_property("pr_next", 8)

    ranks = np.full(n, 1.0 / n)
    degrees = np.maximum(csr.out_degrees, 1)
    executed = 0
    residual = np.inf

    for round_index in range(rounds):
        contributions = np.repeat(ranks / degrees, csr.out_degrees)
        pushed = np.bincount(csr.indices, weights=contributions, minlength=n)
        next_ranks = (1.0 - DAMPING) / n + DAMPING * pushed

        if runtime is not None:
            with runtime.round():
                # Full pass: indptr + indices stream sequentially, the
                # source ranks stream sequentially, and every edge
                # scatters into the destination's next-rank entry.
                runtime.sequential_read("indptr")
                runtime.sequential_read("indices")
                runtime.sequential_read("pr_rank")
                runtime.scatter("pr_next", csr.indices.astype(np.int64))
                runtime.stream_write("pr_rank")  # swap buffers
            runtime.sample(f"pr_round_{round_index}")

        residual = float(np.abs(next_ranks - ranks).sum())
        ranks = next_ranks
        executed += 1
        if residual < tolerance:
            return PageRankResult(ranks, executed, True, residual)

    return PageRankResult(ranks, executed, False, residual)
