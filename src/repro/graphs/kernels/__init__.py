"""The four lonestar kernels the paper evaluates (Section VI-B).

Each kernel is a real numpy implementation over the CSR graph; when
given a :class:`~repro.graphs.runtime.GraphRuntime`, it also emits its
line-level memory traffic so the 2LM / NUMA / Sage comparisons measure
genuine algorithm behaviour.
"""

from repro.graphs.kernels.bfs import bfs
from repro.graphs.kernels.cc import connected_components
from repro.graphs.kernels.kcore import kcore
from repro.graphs.kernels.pagerank import pagerank_push

__all__ = ["bfs", "connected_components", "kcore", "pagerank_push"]
