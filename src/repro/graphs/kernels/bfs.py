"""Level-synchronous breadth-first search.

The paper's configuration: "For bfs, the source node was the maximum
out-degree node" (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.runtime import GraphRuntime, adjacency_positions


@dataclass
class BFSResult:
    """Distances (-1 = unreachable) and traversal statistics."""

    dist: np.ndarray
    levels: int
    visited: int


def bfs(
    csr: CSRGraph,
    source: Optional[int] = None,
    runtime: Optional[GraphRuntime] = None,
) -> BFSResult:
    """Breadth-first search from ``source`` (default: max out-degree node)."""
    if source is None:
        source = csr.max_out_degree_node()
    if runtime is not None:
        runtime.layout.add_property("bfs_dist", 8)

    dist = np.full(csr.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0

    while frontier.size:
        positions = adjacency_positions(csr, frontier)
        neighbors = csr.indices[positions].astype(np.int64)
        unvisited = np.unique(neighbors[dist[neighbors] < 0])

        if runtime is not None:
            with runtime.round():
                runtime.gather("indptr", frontier)
                runtime.sequential_read("indices", idx=positions)
                runtime.gather("bfs_dist", neighbors)
                if unvisited.size:
                    runtime.scatter("bfs_dist", unvisited)
            runtime.sample(f"bfs_level_{level}")

        if unvisited.size:
            level += 1
            dist[unvisited] = level
        frontier = unvisited

    return BFSResult(dist=dist, levels=level, visited=int((dist >= 0).sum()))
