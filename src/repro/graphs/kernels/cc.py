"""Connected components by min-label propagation.

Computes weakly connected components of the directed graph: every round
propagates the smaller label across each edge in both directions until
a fixed point — the Shiloach-Vishkin-style data access pattern (full
edge scans with random property updates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.runtime import GraphRuntime


@dataclass
class CCResult:
    labels: np.ndarray
    components: int
    rounds: int


def connected_components(
    csr: CSRGraph,
    runtime: Optional[GraphRuntime] = None,
    max_rounds: int = 1000,
) -> CCResult:
    """Weakly connected components via label propagation."""
    n = csr.num_nodes
    if runtime is not None:
        runtime.layout.add_property("cc_label", 8)

    labels = np.arange(n, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), csr.out_degrees)
    dst = csr.indices.astype(np.int64)

    rounds = 0
    for _ in range(max_rounds):
        before = labels.copy()
        # Propagate the minimum label in both directions along each edge.
        np.minimum.at(labels, dst, labels[src])
        np.minimum.at(labels, src, labels[dst])

        if runtime is not None:
            with runtime.round():
                runtime.sequential_read("indptr")
                runtime.sequential_read("indices")
                runtime.gather("cc_label", src)
                runtime.scatter("cc_label", dst)
            runtime.sample(f"cc_round_{rounds}")

        rounds += 1
        if np.array_equal(before, labels):
            break

    return CCResult(
        labels=labels, components=int(np.unique(labels).size), rounds=rounds
    )
