"""k-core decomposition by iterative peeling.

The paper uses k = 100 (Section VI-B).  Nodes whose effective out-degree
falls below k are removed round by round; removing a node decrements the
effective degree of its *in-neighbors* (found via the transpose graph),
so survivors keep at least k out-edges to other survivors — the
frontier-driven pattern with scattered degree updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.runtime import GraphRuntime, adjacency_positions


@dataclass
class KCoreResult:
    in_core: np.ndarray
    core_size: int
    rounds: int


def kcore(
    csr: CSRGraph,
    k: int = 100,
    runtime: Optional[GraphRuntime] = None,
) -> KCoreResult:
    """Peel nodes of effective out-degree < k until the k-core remains."""
    if runtime is not None:
        runtime.layout.add_property("kcore_degree", 8)

    reverse = csr.reversed()
    degrees = csr.out_degrees.astype(np.int64).copy()
    alive = np.ones(csr.num_nodes, dtype=bool)
    frontier = np.flatnonzero(alive & (degrees < k))
    rounds = 0

    while frontier.size:
        alive[frontier] = False
        # Removing these nodes lowers the effective out-degree of every
        # node with an edge *into* the frontier: its in-neighbors.
        positions = adjacency_positions(reverse, frontier)
        in_neighbors = reverse.indices[positions].astype(np.int64)
        live_in_neighbors = in_neighbors[alive[in_neighbors]]
        decrements = np.bincount(live_in_neighbors, minlength=csr.num_nodes)

        if runtime is not None:
            with runtime.round():
                runtime.gather("indptr", frontier)
                runtime.sequential_read("indices", idx=positions)
                if live_in_neighbors.size:
                    runtime.scatter("kcore_degree", live_in_neighbors)
            runtime.sample(f"kcore_round_{rounds}")

        degrees -= decrements
        frontier = np.flatnonzero(alive & (degrees < k))
        rounds += 1

    return KCoreResult(in_core=alive, core_size=int(alive.sum()), rounds=rounds)
