"""Synthetic graph generators.

Two inputs stand in for the paper's graphs (Section VI-B):

* :func:`kronecker` — a graph500-style R-MAT/Kronecker generator, the
  same family as kron30 (the paper's cache-resident input).
* :func:`web_graph` — a scale-free, power-law web graph standing in for
  wdc12 (the largest publicly available hyperlink graph, which we cannot
  ship); sized so its binary exceeds the scaled DRAM cache.

Both are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graphs.csr import CSRGraph

#: graph500 R-MAT quadrant probabilities.
_RMAT = (0.57, 0.19, 0.19, 0.05)


def kronecker(scale: int, edge_factor: int = 16, seed: int = 1) -> CSRGraph:
    """A graph500 Kronecker graph with ``2**scale`` nodes.

    Edges are sampled bit by bit with the standard (A, B, C, D) =
    (0.57, 0.19, 0.19, 0.05) recursive partitioning, matching the
    generator behind the paper's kron30 input.
    """
    if scale < 1 or scale > 28:
        raise ConfigurationError(f"scale must be in [1, 28], got {scale}")
    if edge_factor < 1:
        raise ConfigurationError("edge_factor must be >= 1")
    rng = np.random.default_rng(seed)
    num_nodes = 1 << scale
    num_edges = num_nodes * edge_factor

    a, b, c, _ = _RMAT
    ab = a + b
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(num_edges)
        # Quadrant choice: bottom half of the matrix sets the src bit,
        # right half sets the dst bit.
        src_bit = r >= ab
        r2 = rng.random(num_edges)
        dst_threshold = np.where(src_bit, c / (1 - ab), b / ab)
        dst_bit = r2 >= dst_threshold
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit

    # graph500 permutes vertex labels to break the generator's locality.
    permutation = rng.permutation(num_nodes)
    return CSRGraph.from_edges(permutation[src], permutation[dst], num_nodes)


def web_graph(
    num_nodes: int,
    avg_degree: int = 30,
    alpha: float = 1.8,
    seed: int = 2,
) -> CSRGraph:
    """A scale-free hyperlink-style graph (wdc12 stand-in).

    Out-degrees follow a truncated power law; destinations are drawn
    with Zipf-like preferential attachment, giving the heavy-tailed
    in-degree distribution and poor locality characteristic of web
    crawls.
    """
    if num_nodes < 2:
        raise ConfigurationError("web graph needs at least 2 nodes")
    if avg_degree < 1:
        raise ConfigurationError("avg_degree must be >= 1")
    if alpha <= 1.0:
        raise ConfigurationError("alpha must exceed 1 for a normalizable tail")
    rng = np.random.default_rng(seed)

    # Pareto out-degrees scaled to hit the requested average; clipping
    # and rounding shave the mean, so top up the deficit uniformly.
    raw = rng.pareto(alpha - 1.0, size=num_nodes) + 1.0
    degrees = np.minimum(raw / raw.mean() * avg_degree, num_nodes / 4).astype(np.int64)
    degrees = np.maximum(degrees, 1)
    deficit = num_nodes * avg_degree - int(degrees.sum())
    if deficit > 0:
        top_up = rng.integers(0, num_nodes, size=deficit)
        degrees += np.bincount(top_up, minlength=num_nodes)
    num_edges = int(degrees.sum())

    src = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    # Preferential destinations: inverse-CDF sampling of a Zipf law over
    # a random popularity ranking of the nodes.
    u = rng.random(num_edges)
    ranks = (num_nodes ** u - 1.0).astype(np.int64) % num_nodes
    popularity = rng.permutation(num_nodes)
    dst = popularity[ranks]
    return CSRGraph.from_edges(src, dst, num_nodes)
