"""Byte-size units and formatting helpers.

All capacities in this package are expressed in bytes.  These constants
mirror the conventions of the paper: binary prefixes (KiB, MiB, GiB) for
device capacities and decimal gigabytes-per-second for bandwidth, matching
the numbers reported in the paper's figures (e.g. "30 GB/s" NVRAM read
bandwidth means 30e9 bytes per second).
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB
TB: int = 1000 * GB

#: Cache-line size of the CPU and of the 2LM DRAM cache (Section IV).
CACHE_LINE: int = 64

#: Optane media access granularity: the DIMM's internal controller reads
#: and writes the 3D-XPoint media in 256-byte chunks (Yang et al., FAST'20).
NVRAM_MEDIA_GRANULARITY: int = 256


def gb_per_s(value: float) -> float:
    """Convert a bandwidth in decimal GB/s to bytes per second."""
    return value * 1e9


def to_gb_per_s(bytes_per_second: float) -> float:
    """Convert bytes per second to decimal GB/s (as plotted in the paper)."""
    return bytes_per_second / 1e9


def format_bytes(n: float) -> str:
    """Render a byte count with a binary prefix, e.g. ``format_bytes(3 * GiB)``."""
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    for unit, suffix in ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if n >= unit:
            return f"{n / unit:.2f} {suffix}"
    return f"{n:.0f} B"


def lines_in(nbytes: int, line_size: int = CACHE_LINE) -> int:
    """Number of cache lines covering ``nbytes`` (must divide evenly)."""
    if nbytes % line_size:
        raise ValueError(f"{nbytes} bytes is not a whole number of {line_size}B lines")
    return nbytes // line_size
