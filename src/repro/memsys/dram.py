"""DDR4 DRAM channel device model.

DRAM bandwidth on this platform is high and comparatively insensitive to
access pattern (the paper's bottlenecks are always the NVRAM side or the
cache's access amplification, never raw DRAM).  The model is therefore a
sustained-bandwidth curve with a mild random-access derating.
"""

from __future__ import annotations

from repro.config import DRAMConfig
from repro.perf.counters import AccessContext, Pattern


class DRAMDevice:
    """One DRAM DIMM on one channel."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config

    @property
    def capacity(self) -> int:
        return self.config.capacity

    def bandwidth(self, ctx: AccessContext) -> float:
        """Achievable bytes/s for this channel's DRAM under ``ctx``.

        Reads and writes share the same sustained channel rate; random
        access pays a small penalty for bank conflicts and row misses.
        """
        bandwidth = self.config.sustained_bandwidth
        if ctx.pattern is Pattern.RANDOM:
            bandwidth *= self.config.random_penalty
        return bandwidth

    def service_time(self, nbytes: float, ctx: AccessContext) -> float:
        """Seconds for this channel's DRAM to move ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"byte count must be non-negative, got {nbytes}")
        if not nbytes:
            return 0.0
        return nbytes / self.bandwidth(ctx)
