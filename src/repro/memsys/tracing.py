"""LLC request-stream recording and replay.

Memory-systems work lives on traces: record the request stream a
workload emits once, then replay it against any number of cache/backend
configurations without re-running the workload.  The recorder wraps any
backend transparently; traces round-trip through compressed ``.npz``
files.

Typical use::

    recorder = RecordingBackend(real_backend)
    run_kernel(recorder, spec, num_lines)        # runs AND records
    recorder.trace.save("stream.npz")

    trace = RequestTrace.load("stream.npz")
    replay(trace, other_backend)                 # same stream, new config
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.memsys.backends import AccessReport, MemoryBackend
from repro.perf.counters import AccessContext, AccessKind, Pattern


@dataclass
class RequestTrace:
    """An ordered LLC request stream with its execution context."""

    #: Concatenated line addresses of every request.
    lines: np.ndarray
    #: Per-batch extents into ``lines``: (start, end).
    extents: np.ndarray  # shape (n, 2), int64
    #: Per-batch request kind: 0 = LLC read, 1 = LLC write.
    kinds: np.ndarray
    #: Per-batch sampling weight.
    weights: np.ndarray
    #: The (single) access context the stream ran under.
    ctx: AccessContext
    #: Free-form provenance (workload name, config, ...), JSON-encodable;
    #: round-trips through the saved archive.
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.extents.shape[0])

    @property
    def total_requests(self) -> int:
        return int(self.lines.size)

    def batch(self, index: int) -> Tuple[np.ndarray, AccessKind, int]:
        start, end = self.extents[index]
        kind = AccessKind.LLC_READ if self.kinds[index] == 0 else AccessKind.LLC_WRITE
        return self.lines[start:end], kind, int(self.weights[index])

    def save(self, path: str | Path) -> Path:
        # np.savez appends .npz only when the suffix is missing; derive
        # the real destination once and hand exactly that to numpy, so
        # the returned path is always the file that exists on disk.
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        np.savez_compressed(
            path,
            lines=self.lines,
            extents=self.extents,
            kinds=self.kinds,
            weights=self.weights,
            threads=self.ctx.threads,
            pattern=0 if self.ctx.pattern is Pattern.SEQUENTIAL else 1,
            granularity=self.ctx.granularity,
            sockets=self.ctx.sockets,
            streams=self.ctx.streams,
            metadata=json.dumps(self.metadata),
        )
        if not path.exists():
            raise FileNotFoundError(f"trace archive was not written at {path}")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RequestTrace":
        with np.load(path) as data:
            ctx = AccessContext(
                threads=int(data["threads"]),
                pattern=Pattern.SEQUENTIAL if int(data["pattern"]) == 0 else Pattern.RANDOM,
                granularity=int(data["granularity"]),
                sockets=int(data["sockets"]),
                streams=int(data["streams"]),
            )
            metadata: Dict[str, Any] = {}
            if "metadata" in data.files:
                metadata = json.loads(str(data["metadata"][()]))
            return cls(
                lines=data["lines"],
                extents=data["extents"],
                kinds=data["kinds"],
                weights=data["weights"],
                ctx=ctx,
                metadata=metadata,
            )


class _TraceBuilder:
    def __init__(self) -> None:
        self.chunks: List[np.ndarray] = []
        self.kinds: List[int] = []
        self.weights: List[int] = []
        self.ctx: Optional[AccessContext] = None

    def record(self, lines: np.ndarray, kind: AccessKind, ctx: AccessContext, weight: int) -> None:
        if self.ctx is None:
            self.ctx = ctx
        elif ctx != self.ctx:
            raise ConfigurationError(
                "RecordingBackend captures single-context streams; "
                f"context changed from {self.ctx} to {ctx}"
            )
        self.chunks.append(np.asarray(lines, dtype=np.int64).copy())
        self.kinds.append(0 if kind is AccessKind.LLC_READ else 1)
        self.weights.append(weight)

    def build(self, metadata: Optional[Dict[str, Any]] = None) -> RequestTrace:
        if self.ctx is None:
            raise ConfigurationError("nothing recorded")
        sizes = np.array([c.size for c in self.chunks], dtype=np.int64)
        ends = np.cumsum(sizes)
        starts = ends - sizes
        return RequestTrace(
            lines=np.concatenate(self.chunks) if self.chunks else np.empty(0, np.int64),
            extents=np.stack([starts, ends], axis=1),
            kinds=np.array(self.kinds, dtype=np.int8),
            weights=np.array(self.weights, dtype=np.int64),
            ctx=self.ctx,
            metadata=dict(metadata or {}),
        )


class RecordingBackend:
    """Wraps a backend, forwarding accesses while recording them.

    ``metadata`` (e.g. ``{"workload": "bfs_kron25"}``) is stamped onto
    every trace built from this recorder and survives save/load.
    """

    def __init__(
        self, inner: MemoryBackend, metadata: Optional[Dict[str, Any]] = None
    ) -> None:
        self.inner = inner
        self.metadata = dict(metadata or {})
        self._builder = _TraceBuilder()

    # Delegate the backend surface.
    @property
    def counters(self):
        return self.inner.counters

    @property
    def timing(self):
        return self.inner.timing

    def epoch(self, ctx: AccessContext):
        return self.inner.epoch(ctx)

    def access(
        self,
        lines,
        kind: AccessKind,
        ctx: AccessContext,
        advance: bool = True,
        weight: int = 1,
    ) -> AccessReport:
        report = self.inner.access(lines, kind, ctx, advance=advance, weight=weight)
        self._builder.record(lines, kind, ctx, weight)
        return report

    @property
    def trace(self) -> RequestTrace:
        return self._builder.build(self.metadata)


def replay(trace: RequestTrace, backend: MemoryBackend, epoch_batches: int = 64):
    """Replay a recorded stream against another backend.

    Batches are grouped into epochs of ``epoch_batches`` so replay gets
    the same overlapped-timing treatment as live execution.  Returns the
    backend's counter snapshot delta for the replay.
    """
    if epoch_batches < 1:
        raise ConfigurationError("epoch_batches must be >= 1")
    start = backend.counters.snapshot()
    for begin in range(0, len(trace), epoch_batches):
        with backend.epoch(trace.ctx):
            for index in range(begin, min(begin + epoch_batches, len(trace))):
                lines, kind, weight = trace.batch(index)
                backend.access(lines, kind, trace.ctx, weight=weight)
    return backend.counters.snapshot().delta(start)
