"""Compatibility re-export: the counter types live in :mod:`repro.perf.counters`.

The uncore-counter vocabulary (:class:`Traffic`, :class:`TagStats`,
:class:`UncoreCounters`, …) started here but is pure measurement with
no simulation logic, so it moved down to the observability layer where
the perf sampler and trace exporters can depend on it without importing
the simulator (ARC001).  This shim keeps the historical import path
working; new code should import from :mod:`repro.perf.counters`.
"""

from __future__ import annotations

from repro.perf.counters import (
    AccessContext,
    AccessKind,
    CounterSnapshot,
    Pattern,
    StoreType,
    TagStats,
    Traffic,
    UncoreCounters,
    as_lines,
)

__all__ = [
    "AccessContext",
    "AccessKind",
    "CounterSnapshot",
    "Pattern",
    "StoreType",
    "TagStats",
    "Traffic",
    "UncoreCounters",
    "as_lines",
]
