"""Epoch-based timing engine.

The simulator is *traffic-first*: workloads and the cache model produce
exact per-device access counts (a :class:`~repro.perf.counters.Traffic`
record), and this module converts a traffic record plus its execution
context into elapsed seconds.  Elapsed time for an epoch is the largest
of the independent rate limits:

* the demand side — threads can only issue loads/stores so fast;
* per channel, the shared DDR-T bus carrying both DRAM and NVRAM data;
* per channel, the DRAM device itself;
* per channel, the NVRAM DIMM, whose media serializes reads and writes.

Traffic is assumed evenly interleaved across the channels in use, which
matches the paper's configuration ("all six Optane DC DIMMs are
configured as a single interleaved set").

The ``nvram_efficiency`` knob models the 2LM miss handler's occupancy
overhead: when NVRAM is reached through the DRAM cache's miss handler
rather than directly, the paper measures only ~60-75 % of raw device
bandwidth (Section IV-D contrasts Figure 4 with Figure 2).  Flat (1LM)
backends use efficiency 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import PlatformConfig
from repro.perf.counters import AccessContext, Traffic
from repro.memsys.dram import DRAMDevice
from repro.memsys.nvram import NVRAMDevice


@dataclass(frozen=True)
class TimeBreakdown:
    """Per-constraint times for one epoch; ``elapsed`` is their maximum."""

    demand_read: float
    demand_write: float
    channel_bus: float
    dram_device: float
    nvram_device: float

    @property
    def elapsed(self) -> float:
        return max(
            self.demand_read,
            self.demand_write,
            self.channel_bus,
            self.dram_device,
            self.nvram_device,
        )

    @property
    def bottleneck(self) -> str:
        """Name of the constraint that determined the elapsed time."""
        times = {
            "demand_read": self.demand_read,
            "demand_write": self.demand_write,
            "channel_bus": self.channel_bus,
            "dram_device": self.dram_device,
            "nvram_device": self.nvram_device,
        }
        return max(times, key=times.__getitem__)


class TimingModel:
    """Converts traffic records into elapsed time on a given platform."""

    def __init__(
        self,
        platform: PlatformConfig,
        nvram_efficiency: float = 1.0,
        cache_managed: bool = False,
    ) -> None:
        if not 0.0 < nvram_efficiency <= 1.0:
            raise ValueError(f"nvram_efficiency must be in (0, 1], got {nvram_efficiency}")
        self.platform = platform
        self.nvram_efficiency = nvram_efficiency
        #: In 2LM the miss handler, not CPU threads, issues NVRAM traffic:
        #: the thread-oversubscription write derating does not apply, but
        #: each miss's fill read and write-back serialize on the media.
        self.cache_managed = cache_managed
        self._dram = DRAMDevice(platform.socket.dram)
        self._nvram = NVRAMDevice(platform.socket.nvram)

    def breakdown(self, traffic: Traffic, ctx: AccessContext) -> TimeBreakdown:
        """Compute the per-constraint service times for one epoch."""
        socket = self.platform.socket
        sockets = min(ctx.sockets, self.platform.sockets)
        channels = socket.channels * sockets
        threads = min(ctx.threads, socket.cpu.cores * sockets)

        demand_read = _ratio(
            traffic.demand_reads * self.platform.line_size,
            threads * socket.cpu.per_thread_read_bandwidth,
        )
        demand_write = _ratio(
            traffic.demand_writes * self.platform.line_size,
            threads * socket.cpu.per_thread_write_bandwidth,
        )

        dram_bytes = (traffic.dram_read_bytes + traffic.dram_write_bytes) / channels
        nvram_read_bytes = traffic.nvram_read_bytes / channels
        nvram_write_bytes = traffic.nvram_write_bytes / channels

        channel_bus = _ratio(
            dram_bytes + nvram_read_bytes + nvram_write_bytes,
            socket.dram.channel_bus_bandwidth,
        )
        dram_device = self._dram.service_time(dram_bytes, ctx)
        nvram_ctx = ctx
        if self.cache_managed:
            nvram_ctx = replace(
                ctx,
                threads=socket.nvram.write_saturation_threads * sockets,
            )
        nvram_device = (
            self._nvram.service_time(
                nvram_read_bytes,
                nvram_write_bytes,
                nvram_ctx,
                serialize=self.cache_managed,
            )
            / self.nvram_efficiency
        )

        return TimeBreakdown(
            demand_read=demand_read,
            demand_write=demand_write,
            channel_bus=channel_bus,
            dram_device=dram_device,
            nvram_device=nvram_device,
        )

    def elapsed(self, traffic: Traffic, ctx: AccessContext) -> float:
        """Seconds to complete ``traffic`` under ``ctx``."""
        return self.breakdown(traffic, ctx).elapsed


def _ratio(numerator: float, denominator: float) -> float:
    if not numerator:
        return 0.0
    return numerator / denominator
