"""Optane DC PMM device model.

Captures the NVRAM behaviour the paper's analysis depends on
(Section III-C, calibrated against Figure 2 and Yang et al., FAST'20):

* Asymmetric bandwidth: ~5.3 GB/s read vs ~1.9 GB/s write per 512 GiB
  DIMM.
* 256 B media granularity.  Random reads smaller than 256 B waste media
  bandwidth; random 64 B writes suffer ~4x write amplification because
  the DIMM's limited write-combining buffer cannot merge them.
* Sequential 64 B writes *are* merged into 256 B media writes, so
  sequential streams achieve full bandwidth at any store width.
* Aggregate write bandwidth peaks at ~4 threads and degrades slightly
  when oversubscribed (Figure 2b).
"""

from __future__ import annotations

from repro.config import NVRAMConfig
from repro.perf.counters import AccessContext, Pattern


class NVRAMDevice:
    """One Optane DC DIMM on one channel."""

    def __init__(self, config: NVRAMConfig) -> None:
        self.config = config

    @property
    def capacity(self) -> int:
        return self.config.capacity

    def _granularity_factor(self, ctx: AccessContext) -> float:
        """Fraction of media bandwidth delivered as useful data.

        Sequential streams are merged to full media accesses by the
        on-DIMM controller; random accesses narrower than the media
        granularity are amplified by ``media / granularity``.
        """
        if ctx.pattern is Pattern.SEQUENTIAL:
            return 1.0
        return min(1.0, ctx.granularity / self.config.media_granularity)

    def _oversubscription_factor(self, ctx: AccessContext) -> float:
        """Write-side derating when more threads than the DIMM buffers like."""
        extra = ctx.threads - self.config.write_saturation_threads * ctx.sockets
        if extra <= 0:
            return 1.0
        derated = 1.0 - self.config.write_oversubscription_penalty * extra
        return max(self.config.write_oversubscription_floor, derated)

    def read_bandwidth(self, ctx: AccessContext) -> float:
        """Achievable read bytes/s for this DIMM under ``ctx``."""
        return self.config.read_bandwidth * self._granularity_factor(ctx)

    def _stream_factor(self, ctx: AccessContext) -> float:
        """Write-combining loss when too many streams interleave.

        The DIMM's small internal buffer merges 64 B writes into 256 B
        media writes only for a handful of concurrent sequential
        streams; beyond :attr:`NVRAMConfig.stream_capacity` the merge
        rate drops (Yang et al., FAST'20).  Random traffic is already
        charged via the granularity factor.
        """
        if ctx.pattern is Pattern.RANDOM:
            return 1.0
        if ctx.streams <= self.config.stream_capacity * ctx.sockets:
            return 1.0
        return self.config.multistream_write_factor

    def write_bandwidth(self, ctx: AccessContext) -> float:
        """Achievable write bytes/s for this DIMM under ``ctx``."""
        return (
            self.config.write_bandwidth
            * self._granularity_factor(ctx)
            * self._oversubscription_factor(ctx)
            * self._stream_factor(ctx)
        )

    def service_time(
        self,
        read_bytes: float,
        write_bytes: float,
        ctx: AccessContext,
        serialize: bool = False,
    ) -> float:
        """Seconds for this DIMM to serve the given read and write volume.

        The DIMM controller keeps separate read and write queues that
        largely overlap, but the shared 3D-XPoint media introduces some
        interference between the streams; ``mixed_interference``
        interpolates between full overlap (0.0) and serialization (1.0).

        ``serialize=True`` forces full serialization: the 2LM miss
        handler issues its NVRAM fill read and dirty write-back
        back-to-back per request, so in memory mode the two streams
        cannot overlap (this is why the paper's Figure 5c shows combined
        NVRAM bandwidth far below either one-directional limit).
        """
        if read_bytes < 0 or write_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        read_time = read_bytes / self.read_bandwidth(ctx) if read_bytes else 0.0
        write_time = write_bytes / self.write_bandwidth(ctx) if write_bytes else 0.0
        interference = 1.0 if serialize else self.config.mixed_interference
        overlap = min(read_time, write_time)
        return max(read_time, write_time) + interference * overlap
