"""Memory-system substrate: devices, counters, timing, and backends.

This package simulates the memory side of the paper's test platform:
DRAM and Optane DIMMs behind integrated memory controllers, the uncore
performance counters used for every measurement in the paper, and the
two system configurations the paper compares — 1LM (app-direct / flat)
and 2LM (DRAM cache in front of NVRAM).
"""

from repro.perf.counters import (
    AccessContext,
    AccessKind,
    CounterSnapshot,
    Pattern,
    StoreType,
    TagStats,
    Traffic,
    UncoreCounters,
    as_lines,
)
from repro.memsys.dram import DRAMDevice
from repro.memsys.nvram import NVRAMDevice
from repro.memsys.timing import TimingModel
from repro.memsys.backends import CachedBackend, FlatBackend, MemoryBackend
from repro.memsys.topology import AddressMap, Region
from repro.memsys.validation import validate_traffic, validate_wall_clock

__all__ = [
    "AccessContext",
    "AccessKind",
    "AddressMap",
    "as_lines",
    "CachedBackend",
    "CounterSnapshot",
    "DRAMDevice",
    "FlatBackend",
    "MemoryBackend",
    "NVRAMDevice",
    "Pattern",
    "Region",
    "StoreType",
    "TagStats",
    "TimingModel",
    "Traffic",
    "UncoreCounters",
    "validate_traffic",
    "validate_wall_clock",
]
