"""Memory-system backends: the 1LM (flat) and 2LM (cached) configurations.

A backend is the boundary workloads talk to: it accepts batches of LLC
requests, produces exact device traffic, charges it to the uncore
counters, and advances the virtual clock using the timing model.

* :class:`FlatBackend` — 1LM / app-direct.  Each line address is backed
  by DRAM or NVRAM according to an :class:`~repro.memsys.topology.AddressMap`
  (e.g. NUMA-preferred allocation); requests go straight to the device.
* :class:`CachedBackend` — 2LM / memory mode.  All lines are NVRAM-backed
  and a DRAM cache model intercepts every request.  NVRAM bandwidth is
  derated by ``nvram_efficiency`` to model the miss handler's occupancy
  overhead, calibrated so a 100 %-miss stream achieves the ~70 % of raw
  device bandwidth the paper measures (Figure 4 vs Figure 2).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, fields
from typing import Iterator, List, Optional, Protocol

import numpy as np

from repro import obs
from repro.config import PlatformConfig
from repro.perf.counters import (
    AccessContext,
    AccessKind,
    TagStats,
    Traffic,
    UncoreCounters,
    as_lines,
)
from repro.memsys.timing import TimingModel
from repro.memsys.topology import AddressMap


class _CacheLike(Protocol):
    """Structural stand-in for :class:`repro.cache.base.CacheModel`."""

    def llc_read(self, lines: np.ndarray) -> "tuple[Traffic, TagStats]": ...

    def llc_write(self, lines: np.ndarray) -> "tuple[Traffic, TagStats]": ...

#: Calibrated fraction of raw NVRAM bandwidth achievable through the 2LM
#: miss handler (Section IV-D: 23 GB/s of ~32 GB/s read, 8 of ~11 write).
MISS_HANDLER_EFFICIENCY = 0.72

#: (attribute, metric name, help) rows for the per-access counters, so
#: the hot accounting loop never rebuilds metric-name strings per batch.
_TRAFFIC_COUNTER_SPECS = tuple(
    (f.name, f"repro_{f.name}_total", f"IMC {f.name.replace('_', ' ')} (lines)")
    for f in fields(Traffic)
)
_TAG_COUNTER_SPECS = tuple(
    (f.name, f"repro_tag_{f.name}_total", f"2LM tag {f.name.replace('_', ' ')}")
    for f in fields(TagStats)
)


class _CounterHandles:
    """Per-backend cache of resolved telemetry counter handles.

    Valid for exactly one telemetry handle (compared by identity in
    :meth:`_EpochSupport._account`); each slot resolves lazily on its
    first nonzero increment, preserving the registry invariant that a
    counter exists only once something was recorded to it.
    """

    __slots__ = ("tele", "traffic", "tags")

    def __init__(self, tele) -> None:
        self.tele = tele
        self.traffic: List[Optional[obs.Counter]] = [None] * len(_TRAFFIC_COUNTER_SPECS)
        self.tags: List[Optional[obs.Counter]] = [None] * len(_TAG_COUNTER_SPECS)


@dataclass(frozen=True)
class AccessReport:
    """Result of one backend access batch."""

    traffic: Traffic
    tags: TagStats
    seconds: float


class Epoch:
    """A window of overlapped execution.

    Within an epoch, accesses contribute traffic but no time; when the
    epoch closes, elapsed time is computed from the *pooled* traffic, so
    independent constraints (demand reads vs writes, DRAM vs NVRAM)
    overlap as they would in a pipelined steady state.  ``add_compute``
    registers serial compute work; the epoch takes the roofline maximum
    of compute and memory time.
    """

    def __init__(self, ctx: AccessContext) -> None:
        self.ctx = ctx
        self.compute_seconds = 0.0
        self.memory_seconds = 0.0
        self.seconds = 0.0
        self.traffic = Traffic()
        self.tags = TagStats()

    def add_compute(self, seconds: float) -> None:
        """Register compute time that overlaps the epoch's memory traffic."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        self.compute_seconds += seconds


class MemoryBackend(Protocol):
    """Common interface of the 1LM and 2LM configurations."""

    counters: UncoreCounters
    timing: TimingModel

    def access(
        self,
        lines: np.ndarray,
        kind: AccessKind,
        ctx: AccessContext,
        advance: bool = True,
        weight: int = 1,
    ) -> AccessReport:
        """Process a batch of LLC requests and account for them.

        ``weight`` multiplies the recorded traffic: stride-sampling
        executors simulate every N-th line and weight the result by N.
        """
        ...

    def epoch(self, ctx: AccessContext) -> "contextlib.AbstractContextManager[Epoch]":
        """Open an overlapped-execution window (see :class:`Epoch`)."""
        ...


class _EpochSupport:
    """Shared epoch bookkeeping and telemetry for the concrete backends."""

    counters: UncoreCounters
    timing: TimingModel

    def __init__(self) -> None:
        self._active_epoch: Optional[Epoch] = None
        self._counter_handles: Optional[_CounterHandles] = None

    @contextlib.contextmanager
    def epoch(self, ctx: AccessContext) -> Iterator[Epoch]:
        if self._active_epoch is not None:
            raise RuntimeError("epochs do not nest")
        tele = obs.get()
        with contextlib.ExitStack() as stack:
            span = (
                stack.enter_context(
                    tele.span(
                        "memsys.epoch", cat="memsys", clock=lambda: self.counters.time
                    )
                )
                if tele.enabled
                else None
            )
            epoch = Epoch(ctx)
            self._active_epoch = epoch
            try:
                yield epoch
            finally:
                self._active_epoch = None
            breakdown = self.timing.breakdown(epoch.traffic, ctx)
            epoch.memory_seconds = breakdown.elapsed
            if self.timing.cache_managed:
                # Demand misses resolve through the multi-access miss
                # handler; those stalls are latency the core pipeline
                # cannot hide behind compute (Figure 5a: MIPS collapses
                # during high-miss phases), so NVRAM service adds to the
                # compute time instead of overlapping it.
                epoch.seconds = max(
                    breakdown.elapsed,
                    epoch.compute_seconds + breakdown.nvram_device,
                )
            else:
                epoch.seconds = max(epoch.memory_seconds, epoch.compute_seconds)
            self.counters.advance(epoch.seconds)
            if span is not None:
                span.set(
                    accesses=epoch.traffic.total_accesses,
                    demand_accesses=epoch.traffic.demand_accesses,
                    amplification=epoch.traffic.amplification,
                    seconds=epoch.seconds,
                )
                self._record_epoch_metrics(tele, epoch)

    def _record_epoch_metrics(self, tele, epoch: Epoch) -> None:
        tele.histogram(
            "repro_epoch_amplification",
            obs.AMPLIFICATION_BUCKETS,
            "per-epoch accesses per demand access",
        ).observe(epoch.traffic.amplification)
        tele.histogram(
            "repro_epoch_accesses",
            obs.SIZE_BUCKETS,
            "device accesses pooled per epoch",
        ).observe(epoch.traffic.total_accesses)
        if epoch.tags.checks:
            tele.histogram(
                "repro_epoch_hit_rate",
                obs.RATIO_BUCKETS,
                "per-epoch DRAM-cache tag hit rate",
            ).observe(epoch.tags.hit_rate)
        tele.gauge(
            "repro_tag_hit_rate", "cumulative DRAM-cache tag hit rate"
        ).set(self.counters.tags.hit_rate)

    def access(
        self,
        lines: np.ndarray,
        kind: AccessKind,
        ctx: AccessContext,
        advance: bool = True,
        weight: int = 1,
    ) -> AccessReport:
        tele = obs.get()
        if not tele.enabled:
            return self._access(lines, kind, ctx, advance, weight)
        with tele.span(
            "memsys.access", cat="memsys", clock=lambda: self.counters.time
        ) as span:
            report = self._access(lines, kind, ctx, advance, weight)
            span.set(
                kind=kind.value,
                lines=int(np.size(lines)),
                weight=weight,
                dram=report.traffic.dram_reads + report.traffic.dram_writes,
                nvram=report.traffic.nvram_reads + report.traffic.nvram_writes,
            )
        tele.histogram(
            "repro_access_batch_lines",
            obs.SIZE_BUCKETS,
            "LLC request batch size per backend access",
        ).observe(int(np.size(lines)))
        return report

    def _access(
        self,
        lines: np.ndarray,
        kind: AccessKind,
        ctx: AccessContext,
        advance: bool,
        weight: int,
    ) -> AccessReport:
        raise NotImplementedError

    def _account(self, traffic: Traffic, tags: TagStats, ctx: AccessContext, advance: bool) -> float:
        """Record one access's traffic; return its standalone time."""
        self.counters.record_traffic(traffic)
        if tags.checks or tags.ddo_writes:
            self.counters.record_tags(tags)
        tele = obs.get()
        if tele.enabled:
            handles = self._counter_handles
            if handles is None or handles.tele is not tele:
                handles = self._counter_handles = _CounterHandles(tele)
            for index, (attr, metric, help_text) in enumerate(_TRAFFIC_COUNTER_SPECS):
                value = getattr(traffic, attr)
                if value:
                    counter = handles.traffic[index]
                    if counter is None:
                        counter = handles.traffic[index] = tele.counter(metric, help_text)
                    counter.inc(value)
            for index, (attr, metric, help_text) in enumerate(_TAG_COUNTER_SPECS):
                value = getattr(tags, attr)
                if value:
                    counter = handles.tags[index]
                    if counter is None:
                        counter = handles.tags[index] = tele.counter(metric, help_text)
                    counter.inc(value)
        if self._active_epoch is not None:
            self._active_epoch.traffic += traffic
            self._active_epoch.tags += tags
            return 0.0
        seconds = self.timing.elapsed(traffic, ctx)
        if advance:
            self.counters.advance(seconds)
        return seconds


class FlatBackend(_EpochSupport):
    """1LM / app-direct: no cache, requests routed by physical address."""

    def __init__(
        self,
        platform: PlatformConfig,
        address_map: AddressMap,
        counters: Optional[UncoreCounters] = None,
    ) -> None:
        super().__init__()
        self.platform = platform
        self.address_map = address_map
        self.counters = counters or UncoreCounters()
        self.timing = TimingModel(platform, nvram_efficiency=1.0)

    def _access(
        self,
        lines: np.ndarray,
        kind: AccessKind,
        ctx: AccessContext,
        advance: bool,
        weight: int,
    ) -> AccessReport:
        lines = as_lines(lines)
        is_dram = self.address_map.classify(lines)
        n_dram = int(is_dram.sum())
        n_nvram = int(lines.size - n_dram)

        traffic = Traffic()
        if kind is AccessKind.LLC_READ:
            traffic.dram_reads = n_dram
            traffic.nvram_reads = n_nvram
            traffic.demand_reads = int(lines.size)
        else:
            traffic.dram_writes = n_dram
            traffic.nvram_writes = n_nvram
            traffic.demand_writes = int(lines.size)

        tags = TagStats()  # no DRAM cache, no tag events
        if weight != 1:
            traffic = traffic.scaled(weight)
        seconds = self._account(traffic, tags, ctx, advance)
        return AccessReport(traffic=traffic, tags=tags, seconds=seconds)


class CachedBackend(_EpochSupport):
    """2LM / memory mode: a DRAM cache model in front of NVRAM."""

    def __init__(
        self,
        platform: PlatformConfig,
        cache: _CacheLike,
        counters: Optional[UncoreCounters] = None,
        nvram_efficiency: float = MISS_HANDLER_EFFICIENCY,
    ) -> None:
        super().__init__()
        self.platform = platform
        self.cache = cache
        self.counters = counters or UncoreCounters()
        self.timing = TimingModel(
            platform,
            nvram_efficiency=nvram_efficiency,
            cache_managed=True,
        )

    def _access(
        self,
        lines: np.ndarray,
        kind: AccessKind,
        ctx: AccessContext,
        advance: bool,
        weight: int,
    ) -> AccessReport:
        lines = as_lines(lines)
        if kind is AccessKind.LLC_READ:
            traffic, tags = self.cache.llc_read(lines)
        else:
            traffic, tags = self.cache.llc_write(lines)

        if weight != 1:
            traffic = traffic.scaled(weight)
            tags = tags.scaled(weight)
        seconds = self._account(traffic, tags, ctx, advance)
        return AccessReport(traffic=traffic, tags=tags, seconds=seconds)
