"""Physical address layout for flat (1LM / app-direct) configurations.

In 1LM the paper exposes NVRAM either as a DAX device or as extra NUMA
nodes (Section VI-B).  Under the Galois NUMA-preferred policy, threads
allocate from socket DRAM until it is exhausted and then from NVRAM.
An :class:`AddressMap` captures that layout: an ordered list of regions,
each backed by one device kind, addressed at line granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

import numpy as np

from repro.errors import ConfigurationError

DeviceKind = Literal["dram", "nvram"]


@dataclass(frozen=True)
class Region:
    """A contiguous run of physical lines backed by one device kind."""

    name: str
    start_line: int
    num_lines: int
    device: DeviceKind

    def __post_init__(self) -> None:
        if self.start_line < 0 or self.num_lines <= 0:
            raise ConfigurationError(f"invalid region extent for {self.name!r}")
        if self.device not in ("dram", "nvram"):
            raise ConfigurationError(f"unknown device kind {self.device!r}")

    @property
    def end_line(self) -> int:
        return self.start_line + self.num_lines

    def contains(self, line: int) -> bool:
        return self.start_line <= line < self.end_line


class AddressMap:
    """An ordered, non-overlapping set of regions covering [0, total_lines)."""

    def __init__(self, regions: Iterable[Region]) -> None:
        self.regions = sorted(regions, key=lambda r: r.start_line)
        if not self.regions:
            raise ConfigurationError("address map needs at least one region")
        cursor = 0
        for region in self.regions:
            if region.start_line != cursor:
                raise ConfigurationError(
                    f"region {region.name!r} starts at line {region.start_line}, "
                    f"expected {cursor} (regions must tile the space)"
                )
            cursor = region.end_line
        self.total_lines = cursor
        # Boundary and device-kind arrays for vectorized classification.
        self._starts = np.array([r.start_line for r in self.regions], dtype=np.int64)
        self._is_dram = np.array([r.device == "dram" for r in self.regions], dtype=bool)

    @classmethod
    def numa_preferred(cls, dram_lines: int, nvram_lines: int) -> "AddressMap":
        """DRAM-first layout: allocations spill into NVRAM when DRAM fills."""
        return cls(
            [
                Region("dram", 0, dram_lines, "dram"),
                Region("nvram", dram_lines, nvram_lines, "nvram"),
            ]
        )

    @classmethod
    def nvram_only(cls, nvram_lines: int) -> "AddressMap":
        """All-NVRAM layout, e.g. an app-direct DAX mapping."""
        return cls([Region("nvram", 0, nvram_lines, "nvram")])

    def classify(self, lines: np.ndarray) -> np.ndarray:
        """Boolean mask: True where each line is DRAM-backed."""
        if lines.size and (lines.min() < 0 or lines.max() >= self.total_lines):
            raise ConfigurationError("line address outside the mapped space")
        idx = np.searchsorted(self._starts, lines, side="right") - 1
        return self._is_dram[idx]

    def device_of(self, line: int) -> DeviceKind:
        """Device kind backing a single line address."""
        mask = self.classify(np.array([line], dtype=np.int64))
        return "dram" if bool(mask[0]) else "nvram"
