"""Counter validation against analytically expected data movement.

Section III-B: "Results from the hardware performance counters are
validated with the expected data movement and benchmark wall clock
time."  This module provides the same cross-check for the simulator:
for a microbenchmark with known hit/miss composition, the expected
device traffic follows from Table I, and the measured counters must
match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.amplification import AMPLIFICATION_TABLE, RequestOutcome
from repro.perf.counters import TagStats, Traffic


@dataclass(frozen=True)
class ValidationReport:
    """Result of one counter cross-check."""

    ok: bool
    mismatches: List[str]
    expected: Traffic
    measured: Traffic

    def __bool__(self) -> bool:
        return self.ok


def expected_from_tags(tags: TagStats, demand_reads: int, demand_writes: int) -> Traffic:
    """Expected device traffic given the observed tag-event composition.

    Read events and write events are apportioned by the demand mix: all
    DDO events are writes; remaining hits/misses split between reads and
    checked writes cannot be recovered from aggregate tag stats alone,
    so this helper is exact only for single-kind request streams (which
    is how the paper's microbenchmarks are constructed).
    """
    if demand_reads and demand_writes:
        raise ValueError(
            "expected_from_tags is exact only for single-kind request streams"
        )
    total = Traffic()

    def add(outcome: RequestOutcome, count: int) -> None:
        entry = AMPLIFICATION_TABLE[outcome]
        total.dram_reads += entry.dram_reads * count
        total.dram_writes += entry.dram_writes * count
        total.nvram_reads += entry.nvram_reads * count
        total.nvram_writes += entry.nvram_writes * count
        total.demand_reads += entry.demand_reads * count
        total.demand_writes += entry.demand_writes * count

    if demand_reads:
        add(RequestOutcome.READ_HIT, tags.hits)
        add(RequestOutcome.READ_MISS_CLEAN, tags.clean_misses)
        add(RequestOutcome.READ_MISS_DIRTY, tags.dirty_misses)
    else:
        add(RequestOutcome.WRITE_HIT, tags.hits)
        add(RequestOutcome.WRITE_MISS_CLEAN, tags.clean_misses)
        add(RequestOutcome.WRITE_MISS_DIRTY, tags.dirty_misses)
        add(RequestOutcome.WRITE_DDO, tags.ddo_writes)
    return total


def validate_traffic(
    measured: Traffic,
    tags: TagStats,
    *,
    tolerance: float = 0.0,
) -> ValidationReport:
    """Check measured device traffic against the Table-I expectation.

    ``tolerance`` is a relative slack (0.0 = exact) for workloads with
    sampling weights.
    """
    expected = expected_from_tags(tags, measured.demand_reads, measured.demand_writes)
    mismatches: List[str] = []
    for name in ("dram_reads", "dram_writes", "nvram_reads", "nvram_writes"):
        expected_value = getattr(expected, name)
        measured_value = getattr(measured, name)
        limit = max(1.0, tolerance * max(expected_value, measured_value))
        if abs(expected_value - measured_value) > (limit if tolerance else 0):
            mismatches.append(
                f"{name}: expected {expected_value}, measured {measured_value}"
            )
    return ValidationReport(
        ok=not mismatches,
        mismatches=mismatches,
        expected=expected,
        measured=measured,
    )


def validate_wall_clock(
    traffic: Traffic,
    seconds: float,
    peak_bandwidth: float,
    *,
    slack: float = 1.05,
) -> Optional[str]:
    """Sanity-check that elapsed time is consistent with data moved.

    Returns an error string if the run implies moving data faster than
    ``peak_bandwidth`` allows, else None.
    """
    if seconds <= 0:
        return "elapsed time must be positive" if traffic.total_bytes else None
    implied = traffic.total_bytes / seconds
    if implied > peak_bandwidth * slack:
        return (
            f"implied bandwidth {implied:.3g} B/s exceeds the platform peak "
            f"{peak_bandwidth:.3g} B/s"
        )
    return None
