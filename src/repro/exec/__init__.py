"""Parallel execution: declarative sweeps over process pools.

The experiment layer declares each figure's grid as a
:class:`SweepSpec` and hands it to :func:`run_sweep`, which fans the
points across worker processes (or runs them serially for ``jobs=1``)
and returns results in deterministic grid order.  See
:mod:`repro.exec.sweep` for the design constraints.
"""

from repro.exec.sweep import (
    SweepError,
    SweepSpec,
    default_jobs,
    fork_available,
    merge_worker_telemetry,
    run_sweep,
)

__all__ = [
    "SweepError",
    "SweepSpec",
    "default_jobs",
    "fork_available",
    "merge_worker_telemetry",
    "run_sweep",
]
