"""Parallel sweep engine: declarative grids fanned across processes.

Every figure of the paper is a *sweep* — a grid of independent
configuration points (pattern x granularity x thread count, cache
variant, graph x kernel) whose results are merged into one table.  A
:class:`SweepSpec` declares that grid as data; :func:`run_sweep` fans
the points across a ``ProcessPoolExecutor`` and returns their results
in deterministic grid order regardless of completion order.

Design constraints:

* **Serial fallback.**  ``jobs=1`` (the default) — or any platform
  without the ``fork`` start method — runs every point in-process, in
  grid order, with no pool, no pickling, and telemetry flowing into the
  ambient handle exactly as before the engine existed.  Parallel and
  serial runs must produce identical results.
* **Picklable points.**  A spec's ``fn`` must be a module-level
  callable and its per-point params plain data (strings, numbers,
  enums): workers receive ``(spec, index)`` and look the point up.
* **Telemetry round-trip.**  When the parent's telemetry is enabled,
  each worker runs its point under a fresh :func:`repro.obs.session`
  and ships back its span records and a metrics snapshot.  The parent
  rebases worker spans onto its own tracer (``perf_counter`` is a
  system-wide clock, so origins are comparable) and folds the metrics
  into its registry — ``--trace`` / ``--metrics`` capture the whole
  run, parallel or not.  Payloads are merged in grid order after all
  points complete, so merged metrics are deterministic too.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.obs.metrics import MetricsSnapshot
from repro.obs.spans import SpanRecord


class SweepError(RuntimeError):
    """A sweep point failed (worker crash or an exception in ``fn``)."""


@dataclass(frozen=True)
class SweepSpec:
    """A named grid of independent configuration points.

    ``fn`` is invoked once per point as ``fn(**common, **point)``; it
    must be a module-level callable so worker processes can unpickle it
    by reference.
    """

    name: str
    fn: Callable[..., Any]
    points: Tuple[Dict[str, Any], ...]
    common: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_points(
        cls,
        name: str,
        fn: Callable[..., Any],
        points: Sequence[Mapping[str, Any]],
        common: Optional[Mapping[str, Any]] = None,
    ) -> "SweepSpec":
        """A spec from an explicit point list (kept in the given order)."""
        return cls(
            name=name,
            fn=fn,
            points=tuple(dict(point) for point in points),
            common=dict(common or {}),
        )

    @classmethod
    def grid(
        cls,
        name: str,
        fn: Callable[..., Any],
        axes: Mapping[str, Sequence[Any]],
        common: Optional[Mapping[str, Any]] = None,
    ) -> "SweepSpec":
        """The cartesian product of ``axes``, last axis varying fastest."""
        names = list(axes)
        points = [
            dict(zip(names, values))
            for values in itertools.product(*(axes[n] for n in names))
        ]
        return cls.from_points(name, fn, points, common)

    def __len__(self) -> int:
        return len(self.points)

    def kwargs(self, index: int) -> Dict[str, Any]:
        """The full keyword arguments for point ``index``."""
        return {**self.common, **self.points[index]}


@dataclass
class _WorkerTelemetry:
    """What a worker ships home: its spans and a metrics snapshot."""

    records: List[SpanRecord]
    origin_abs: float
    metrics: MetricsSnapshot


def _call_point(spec: SweepSpec, index: int) -> Any:
    """Run one point, wrapped in a sweep span when telemetry is live."""
    tele = obs.get()
    if not tele.enabled:
        return spec.fn(**spec.kwargs(index))
    annotations = {
        key: value
        for key, value in spec.points[index].items()
        if isinstance(value, (str, int, float, bool))
    }
    with tele.span(f"sweep:{spec.name}", cat="sweep", point=index, **annotations):
        return spec.fn(**spec.kwargs(index))


def _worker_run(
    spec: SweepSpec, index: int, capture_telemetry: bool
) -> Tuple[int, Any, Optional[_WorkerTelemetry]]:
    """Pool entry point: run one point in a worker process."""
    if not capture_telemetry:
        return index, _call_point(spec, index), None
    with obs.session() as tele:
        value = _call_point(spec, index)
        payload = _WorkerTelemetry(
            records=list(tele.tracer.records),
            origin_abs=tele.tracer.origin_abs,
            metrics=tele.metrics.snapshot(),
        )
    return index, value, payload


def merge_worker_telemetry(
    telemetry: "obs.Telemetry", payload: _WorkerTelemetry
) -> None:
    """Fold one worker's telemetry payload into the parent handle."""
    tracer = telemetry.tracer
    if tracer is not None and payload.records:
        tracer.absorb(
            payload.records,
            wall_offset=payload.origin_abs - tracer.origin_abs,
            depth_offset=tracer.depth,
        )
    if telemetry.metrics is not None and payload.metrics is not None:
        telemetry.metrics.merge_snapshot(payload.metrics)


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_jobs() -> int:
    """A sensible ``--jobs`` for "use the machine": the CPU count."""
    return os.cpu_count() or 1


def run_sweep(spec: SweepSpec, jobs: int = 1) -> List[Any]:
    """Run every point of ``spec``; results come back in grid order.

    ``jobs=1`` — or any platform without ``fork`` — runs serially
    in-process.  ``jobs>1`` fans points across a process pool of at
    most ``min(jobs, len(spec))`` workers.  A failing point raises
    :class:`SweepError` naming the point and its parameters.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    total = len(spec)
    if total == 0:
        return []

    jobs = min(jobs, total)
    if jobs == 1 or not fork_available():
        return [_run_serial_point(spec, index) for index in range(total)]

    tele = obs.get()
    capture = bool(tele.enabled)
    results: List[Any] = [None] * total
    payloads: List[Optional[_WorkerTelemetry]] = [None] * total
    # fork: workers inherit imported modules and warm lru_caches
    # (platforms, graphs, access patterns) copy-on-write, so per-point
    # startup cost stays near zero.
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        futures = {
            pool.submit(_worker_run, spec, index, capture): index
            for index in range(total)
        }
        try:
            for future in as_completed(futures):
                submitted = futures[future]
                try:
                    index, value, payload = future.result()
                # Worker barrier: any point failure, whatever its type,
                # must surface as a SweepError naming the point.
                except Exception as error:  # repro-lint: disable=EXC001
                    raise SweepError(
                        f"sweep {spec.name!r} point {submitted} "
                        f"({spec.points[submitted]}) failed: {error!r}"
                    ) from error
                results[index] = value
                payloads[index] = payload
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    if capture:
        for payload in payloads:
            if payload is not None:
                merge_worker_telemetry(tele, payload)
    return results


def _run_serial_point(spec: SweepSpec, index: int) -> Any:
    try:
        return _call_point(spec, index)
    except SweepError:
        raise
    # Serial worker barrier: mirror the pool path so jobs=1 fails the
    # same way, with the failing point named.
    except Exception as error:  # repro-lint: disable=EXC001
        raise SweepError(
            f"sweep {spec.name!r} point {index} "
            f"({spec.points[index]}) failed: {error!r}"
        ) from error
