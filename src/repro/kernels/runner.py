"""Drives microbenchmark kernels through a memory backend.

Translates a :class:`~repro.kernels.bench.KernelSpec` into the LLC
request stream the IMC would see (Section IV-A's request taxonomy) and
accounts traffic, tag events, virtual time, and effective bandwidth —
the quantities the paper's Figures 2 and 4 report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cache.base import AccessKind
from repro.config import BATCH_LINES
from repro.cpu.cores import retired_instructions
from repro.cpu.llc import LLCModel, WritebackQueue
from repro.kernels.bench import Kernel, KernelSpec
from repro.kernels.patterns import access_blocks
from repro.memsys.backends import MemoryBackend
from repro.perf.counters import AccessContext, StoreType, TagStats, Traffic
from repro.units import CACHE_LINE, to_gb_per_s

#: Lines per backend call; large enough to amortize numpy overhead,
#: small enough that the standard-store write-back delay is resolved.
#: Shared with every other streaming executor via :mod:`repro.config`.
DEFAULT_BATCH_LINES = BATCH_LINES


@dataclass
class BenchmarkResult:
    """Aggregate outcome of one benchmark run."""

    spec: KernelSpec
    traffic: Traffic
    tags: TagStats
    seconds: float
    demand_bytes: int

    @property
    def effective_bandwidth(self) -> float:
        """Application-visible bytes/s: data touched over wall-clock time.

        Matches the paper's "effective" bars (Section IV-A): array size
        times iterations divided by elapsed time.
        """
        if not self.seconds:
            return 0.0
        return self.demand_bytes / self.seconds

    @property
    def effective_gb_per_s(self) -> float:
        return to_gb_per_s(self.effective_bandwidth)

    def bandwidth_gb_per_s(self, field: str) -> float:
        """Per-device bandwidth in GB/s, e.g. ``bandwidth_gb_per_s('nvram_reads')``."""
        lines = getattr(self.traffic, field)
        if not self.seconds:
            return 0.0
        return to_gb_per_s(lines * CACHE_LINE / self.seconds)


def run_kernel(
    backend: MemoryBackend,
    spec: KernelSpec,
    num_lines: int,
    *,
    start_line: int = 0,
    iterations: int = 1,
    batch_lines: int = DEFAULT_BATCH_LINES,
) -> BenchmarkResult:
    """Run one kernel over a ``num_lines`` buffer at ``start_line``.

    The buffer is iterated ``iterations`` times; each pass touches every
    line exactly once in the order given by the spec's pattern.
    """
    tele = obs.get()
    if tele.enabled:
        with tele.span(
            "kernels.run",
            cat="kernels",
            clock=lambda: backend.counters.time,
            kernel=spec.kernel.value,
            pattern=spec.pattern.value,
            granularity=spec.granularity,
            threads=spec.threads,
            num_lines=num_lines,
            iterations=iterations,
        ):
            return _run_kernel(
                backend, spec, num_lines,
                start_line=start_line, iterations=iterations, batch_lines=batch_lines,
            )
    return _run_kernel(
        backend, spec, num_lines,
        start_line=start_line, iterations=iterations, batch_lines=batch_lines,
    )


def _run_kernel(
    backend: MemoryBackend,
    spec: KernelSpec,
    num_lines: int,
    *,
    start_line: int,
    iterations: int,
    batch_lines: int,
) -> BenchmarkResult:
    if num_lines <= 0:
        raise ValueError(f"buffer must have at least one line, got {num_lines}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")

    ctx = AccessContext(
        threads=spec.threads,
        pattern=spec.pattern,
        granularity=spec.granularity,
        sockets=spec.sockets,
    )
    llc = LLCModel(backend.timing.platform.socket.cpu)
    # access_blocks returns a shared read-only cache entry; the request
    # pipeline below only ever slices it, so the zero-offset case can
    # use it directly.  A non-zero offset allocates a fresh array.
    order = access_blocks(num_lines, spec.pattern, spec.granularity)
    if start_line:
        order = start_line + order

    totals = Traffic()
    tags = TagStats()
    seconds = 0.0
    delayed_writes = spec.writes and spec.store_type is StoreType.STANDARD
    mix_rng = np.random.default_rng(0xB411) if spec.kernel is Kernel.MIXED else None

    for _ in range(iterations):
        queue = WritebackQueue(llc.capacity_lines) if delayed_writes else None
        # Each pass over the buffer is one overlapped epoch: demand
        # reads, write-backs, and device traffic pipeline against each
        # other, as they do in the hardware's steady state.
        with backend.epoch(ctx) as epoch:
            for begin in range(0, order.size, batch_lines):
                batch = order[begin : begin + batch_lines]
                if mix_rng is not None:
                    # Disjoint load/store partition at the chosen ratio.
                    loads = mix_rng.random(batch.size) < spec.read_fraction
                    if loads.any():
                        backend.access(batch[loads], AccessKind.LLC_READ, ctx)
                    stores = batch[~loads]
                    if stores.size:
                        if queue is None:
                            backend.access(stores, AccessKind.LLC_WRITE, ctx)
                        else:
                            backend.access(stores, AccessKind.LLC_READ, ctx)  # RFO
                            for evicted in queue.push(stores):
                                backend.access(evicted, AccessKind.LLC_WRITE, ctx)
                    continue
                if spec.reads:
                    backend.access(batch, AccessKind.LLC_READ, ctx)
                elif delayed_writes:
                    # Standard store to a non-resident line: RFO first.
                    backend.access(batch, AccessKind.LLC_READ, ctx)
                if spec.writes:
                    if queue is None:
                        backend.access(batch, AccessKind.LLC_WRITE, ctx)
                    else:
                        for evicted in queue.push(batch):
                            backend.access(evicted, AccessKind.LLC_WRITE, ctx)
            if queue is not None:
                for evicted in queue.drain():
                    backend.access(evicted, AccessKind.LLC_WRITE, ctx)
        totals += epoch.traffic
        tags += epoch.tags
        seconds += epoch.seconds

    demand_bytes = iterations * num_lines * CACHE_LINE
    backend.counters.retire(
        retired_instructions(demand_bytes, backend.timing.platform.socket.cpu)
    )
    return BenchmarkResult(
        spec=spec,
        traffic=totals,
        tags=tags,
        seconds=seconds,
        demand_bytes=demand_bytes,
    )
