"""Kernel definitions for the microbenchmark suite.

Three operations, mirroring the paper's generator (Section III-B):

* ``READ_ONLY`` — a load per element.
* ``WRITE_ONLY`` — a store per element.
* ``READ_MODIFY_WRITE`` — a load followed by a store to the same element.

Stores come in two flavours with very different IMC-level behaviour
(Section IV-A):

* **standard** stores allocate in the CPU cache: a store to a line not
  present in the LLC first issues a Read-For-Ownership (an LLC read!),
  and the dirtied line reaches the IMC only later, when it is evicted —
  giving the delayed write-back pattern behind the Dirty Data
  Optimization.
* **nontemporal** stores bypass the CPU cache entirely and arrive at
  the IMC as immediate LLC writes, with no RFO.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.perf.counters import Pattern, StoreType
from repro.units import CACHE_LINE


class Kernel(enum.Enum):
    """Microbenchmark operation."""

    READ_ONLY = "read_only"
    WRITE_ONLY = "write_only"
    READ_MODIFY_WRITE = "read_modify_write"
    #: Interleaved loads and stores over disjoint elements, with a
    #: configurable read fraction (FAST'20-style mixed bandwidth).
    MIXED = "mixed"


@dataclass(frozen=True)
class KernelSpec:
    """A fully parameterized microbenchmark run."""

    kernel: Kernel
    pattern: Pattern = Pattern.SEQUENTIAL
    granularity: int = CACHE_LINE
    store_type: StoreType = StoreType.NONTEMPORAL
    threads: int = 1
    sockets: int = 1
    #: Fraction of elements loaded (vs stored) for the MIXED kernel.
    read_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.granularity < CACHE_LINE or self.granularity % CACHE_LINE:
            raise ValueError(
                f"granularity must be a positive multiple of {CACHE_LINE}, "
                f"got {self.granularity}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )

    @property
    def reads(self) -> bool:
        """Does the kernel issue demand loads?"""
        if self.kernel is Kernel.MIXED:
            return self.read_fraction > 0.0
        return self.kernel in (Kernel.READ_ONLY, Kernel.READ_MODIFY_WRITE)

    @property
    def writes(self) -> bool:
        """Does the kernel issue stores?"""
        if self.kernel is Kernel.MIXED:
            return self.read_fraction < 1.0
        return self.kernel in (Kernel.WRITE_ONLY, Kernel.READ_MODIFY_WRITE)

    def describe(self) -> str:
        parts = [
            self.kernel.value,
            self.pattern.value,
            f"{self.granularity}B",
            f"{self.threads}T",
        ]
        if self.writes:
            parts.append(self.store_type.value)
        return " ".join(parts)
