"""Microbenchmark generator — the Python analogue of KernelBenchmarks.jl.

The paper measures its platform with custom load/store loops: read-only,
write-only, and read-modify-write kernels over a buffer, iterated either
sequentially or pseudo-randomly (each address touched exactly once, via
a maximum-length LFSR), with 64-512 B access granularity and standard or
nontemporal stores (Section III-B).  This package generates the same
access streams and drives them through a memory backend.
"""

from repro.kernels.lfsr import lfsr_sequence, max_length_lfsr_states
from repro.kernels.patterns import access_blocks
from repro.kernels.bench import Kernel, KernelSpec
from repro.kernels.runner import BenchmarkResult, run_kernel

__all__ = [
    "BenchmarkResult",
    "Kernel",
    "KernelSpec",
    "access_blocks",
    "lfsr_sequence",
    "max_length_lfsr_states",
    "run_kernel",
]
