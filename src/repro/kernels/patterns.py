"""Spatial access-pattern generation for the microbenchmark kernels.

Produces the order in which a kernel touches the cache lines of a
buffer.  Sequential iteration walks the buffer in address order; random
iteration permutes *blocks* of the chosen access granularity with the
maximum-length LFSR, touching every line exactly once per pass
(Section III-B: granularity ranges 64 B to 512 B, sequential iteration
is granularity-indifferent).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.lfsr import lfsr_sequence
from repro.memsys.counters import Pattern
from repro.units import CACHE_LINE


def access_blocks(
    num_lines: int,
    pattern: Pattern,
    granularity: int = CACHE_LINE,
    line_size: int = CACHE_LINE,
) -> np.ndarray:
    """Line-offset visit order for one pass over a ``num_lines`` buffer.

    Parameters
    ----------
    num_lines:
        Buffer length in cache lines.
    pattern:
        ``SEQUENTIAL`` or ``RANDOM``.
    granularity:
        Access granularity in bytes; random iteration shuffles blocks of
        this size and walks lines within a block consecutively.
    """
    if num_lines < 0:
        raise ValueError(f"num_lines must be non-negative, got {num_lines}")
    if granularity % line_size:
        raise ValueError(f"granularity {granularity} is not a multiple of {line_size}")
    if pattern is Pattern.SEQUENTIAL:
        return np.arange(num_lines, dtype=np.int64)

    lines_per_block = granularity // line_size
    if num_lines % lines_per_block:
        raise ValueError(
            f"{num_lines} lines do not divide into {granularity}-byte blocks"
        )
    num_blocks = num_lines // lines_per_block
    block_order = lfsr_sequence(num_blocks)
    if lines_per_block == 1:
        return block_order
    expanded = block_order[:, None] * lines_per_block + np.arange(
        lines_per_block, dtype=np.int64
    )
    return expanded.reshape(-1)
