"""Spatial access-pattern generation for the microbenchmark kernels.

Produces the order in which a kernel touches the cache lines of a
buffer.  Sequential iteration walks the buffer in address order; random
iteration permutes *blocks* of the chosen access granularity with the
maximum-length LFSR, touching every line exactly once per pass
(Section III-B: granularity ranges 64 B to 512 B, sequential iteration
is granularity-indifferent).

Orders are memoized per process: a sweep revisits the same
(num_lines, pattern, granularity) combination for every thread count,
so the expensive LFSR expansion runs once and every later lookup
returns the same **read-only** cached array (``writeable=False``).
The memoization is process-safe by construction — each sweep worker
owns its private cache (warm via fork's copy-on-write), and the
read-only flag guarantees no caller can corrupt an entry another
caller shares.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.kernels.lfsr import lfsr_sequence
from repro.perf.counters import Pattern
from repro.units import CACHE_LINE


def access_blocks(
    num_lines: int,
    pattern: Pattern,
    granularity: int = CACHE_LINE,
    line_size: int = CACHE_LINE,
) -> np.ndarray:
    """Line-offset visit order for one pass over a ``num_lines`` buffer.

    Parameters
    ----------
    num_lines:
        Buffer length in cache lines.
    pattern:
        ``SEQUENTIAL`` or ``RANDOM``.
    granularity:
        Access granularity in bytes; random iteration shuffles blocks of
        this size and walks lines within a block consecutively.

    Returns a **shared, read-only** cache entry; callers that need a
    mutable order must copy (arithmetic like ``start + order`` already
    allocates a fresh array).
    """
    if num_lines < 0:
        raise ValueError(f"num_lines must be non-negative, got {num_lines}")
    if granularity % line_size:
        raise ValueError(f"granularity {granularity} is not a multiple of {line_size}")
    if pattern is Pattern.SEQUENTIAL:
        # Sequential iteration is granularity-indifferent: normalize the
        # cache key so every granularity shares one entry.
        return _cached_order(num_lines, pattern, line_size, line_size)
    return _cached_order(num_lines, pattern, granularity, line_size)


@lru_cache(maxsize=64)
def _cached_order(
    num_lines: int, pattern: Pattern, granularity: int, line_size: int
) -> np.ndarray:
    order = _compute_order(num_lines, pattern, granularity, line_size)
    order.setflags(write=False)
    return order


def _compute_order(
    num_lines: int, pattern: Pattern, granularity: int, line_size: int
) -> np.ndarray:
    if pattern is Pattern.SEQUENTIAL:
        return np.arange(num_lines, dtype=np.int64)

    lines_per_block = granularity // line_size
    if num_lines % lines_per_block:
        raise ValueError(
            f"{num_lines} lines do not divide into {granularity}-byte blocks"
        )
    num_blocks = num_lines // lines_per_block
    block_order = lfsr_sequence(num_blocks)
    if lines_per_block == 1:
        # lfsr_sequence returns its own read-only cache entry; both
        # caches may share it — neither will ever write through it.
        return block_order
    expanded = block_order[:, None] * lines_per_block + np.arange(
        lines_per_block, dtype=np.int64
    )
    return expanded.reshape(-1)


def pattern_cache_info():
    """Hit/miss statistics of the per-process access-order cache."""
    return _cached_order.cache_info()


def pattern_cache_clear() -> None:
    """Drop every cached access order (tests use this for isolation)."""
    _cached_order.cache_clear()
