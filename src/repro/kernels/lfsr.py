"""Maximum-length linear feedback shift registers.

The paper's benchmark generator uses a maximum-length LFSR to produce
pseudo-random array indices with the guarantee that *every index is
visited exactly once* — no repeats, no gaps (Section III-B).  A
maximum-length LFSR of width ``w`` cycles through all ``2**w - 1``
non-zero states; to index an array of arbitrary size ``n`` we pick the
smallest sufficient width and discard out-of-range states, preserving
the exactly-once property.

States are generated as a bitstream satisfying the trinomial recurrence
``b[k] = b[k-w] XOR b[k-j]``, which vectorizes in blocks of up to ``j``
bits, then packed into ``w``-bit windows — orders of magnitude faster
than stepping the register in Python.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: Primitive trinomials x^w + x^j + 1 over GF(2), chosen (via reciprocal
#: pairs) so the short lag j is large, maximizing the vectorization block.
#: Source: Zierler & Brillhart, "On primitive trinomials (mod 2)".
_PRIMITIVE_TRINOMIALS = {
    2: 1,
    3: 2,
    4: 3,
    5: 3,
    6: 5,
    7: 6,
    9: 5,
    10: 7,
    11: 9,
    15: 14,
    17: 14,
    18: 11,
    20: 17,
    21: 19,
    22: 21,
    23: 18,
    25: 22,
    28: 25,
    29: 27,
    31: 28,
    33: 20,
}

#: Widths with a known primitive trinomial, ascending.
_WIDTHS = sorted(_PRIMITIVE_TRINOMIALS)


def _width_for(n: int) -> int:
    """Smallest supported LFSR width whose period covers ``n`` values."""
    for width in _WIDTHS:
        if (1 << width) - 1 >= n:
            return width
    raise ValueError(f"no supported LFSR width covers {n} indices")


@lru_cache(maxsize=8)
def max_length_lfsr_states(width: int) -> np.ndarray:
    """All ``2**width - 1`` states of the width-``width`` Fibonacci LFSR.

    Returns an int64 array of the non-zero states in visit order,
    starting from the all-ones seed.  Cached: generating the orbit is a
    one-time cost per width.
    """
    if width not in _PRIMITIVE_TRINOMIALS:
        raise ValueError(f"no primitive trinomial registered for width {width}")
    if width > 26:
        raise ValueError(
            f"width-{width} orbit ({(1 << width) - 1} states) would need "
            "gigabytes of memory; index a smaller space or chunk the buffer"
        )
    j = _PRIMITIVE_TRINOMIALS[width]
    period = (1 << width) - 1

    # Bitstream b of length period + width; the first `width` bits are
    # the seed (all ones), then b[k] = b[k-width] ^ b[k-j].
    bits = np.zeros(period + width, dtype=np.uint8)
    bits[:width] = 1
    pos = width
    end = period + width
    while pos < end:
        block = min(j, end - pos)
        np.bitwise_xor(
            bits[pos - width : pos - width + block],
            bits[pos - j : pos - j + block],
            out=bits[pos : pos + block],
        )
        pos += block

    # State k is the window bits[k : k+width], packed LSB-first.
    states = np.zeros(period, dtype=np.int64)
    for i in range(width):
        states |= bits[i : i + period].astype(np.int64) << i
    states.setflags(write=False)  # shared cache entry
    return states


@lru_cache(maxsize=32)
def lfsr_sequence(n: int) -> np.ndarray:
    """A pseudo-random visit order of ``range(n)``, each index exactly once.

    Uses the smallest maximum-length LFSR covering ``n`` and discards
    states that map outside the array, exactly as the paper's benchmark
    generator does.

    Memoized per process: returns a shared **read-only** array
    (``writeable=False``); copy before mutating.
    """
    if n < 0:
        raise ValueError(f"sequence length must be non-negative, got {n}")
    if n == 0:
        sequence = np.empty(0, dtype=np.int64)
    elif n == 1:
        sequence = np.zeros(1, dtype=np.int64)
    else:
        states = max_length_lfsr_states(_width_for(n))
        indices = states - 1  # states cover 1..2^w-1; shift to 0-based
        sequence = indices[indices < n]
    sequence.setflags(write=False)
    return sequence
