"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A platform or workload configuration is inconsistent."""


class SimulationError(ReproError):
    """The simulation reached an invalid state."""


class InvariantError(SimulationError):
    """An internal invariant the simulator relies on was violated.

    Raised instead of ``assert`` in library code: assertions vanish
    under ``python -O``, and these checks guard reproduction fidelity
    (grid ordering, placement consistency), so they must survive
    every interpreter mode.
    """


class SolverError(ReproError):
    """The AutoTM placement solver failed to produce a feasible plan."""
