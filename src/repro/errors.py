"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A platform or workload configuration is inconsistent."""


class SimulationError(ReproError):
    """The simulation reached an invalid state."""


class InvariantError(SimulationError):
    """An internal invariant the simulator relies on was violated.

    Raised instead of ``assert`` in library code: assertions vanish
    under ``python -O``, and these checks guard reproduction fidelity
    (grid ordering, placement consistency), so they must survive
    every interpreter mode.
    """


class SolverError(ReproError):
    """The AutoTM placement solver failed to produce a feasible plan."""


class ServiceError(ReproError):
    """Base class for the simulation-service layer (:mod:`repro.service`)."""


class QueueFullError(ServiceError):
    """The job queue is at capacity; the request was rejected.

    Backpressure is explicit: callers (the HTTP front end, batch
    submitters) see the rejection and decide whether to retry later —
    the queue never grows without bound.
    """


class JobError(ServiceError):
    """A job failed while executing (simulation error, worker crash)."""


class JobTimeoutError(JobError):
    """A job exceeded its per-job timeout and was cancelled."""


class JobRejectedError(ServiceError):
    """A request named an unknown experiment or carried bad parameters."""
