"""The AutoTM placement problem.

For each transient tensor the optimizer chooses one of three modes:

* ``DRAM`` — resident in DRAM for its whole life (fast, costs capacity).
* ``NVRAM`` — resident in NVRAM; every kernel touching it pays the
  bandwidth difference.
* ``STASH`` — DRAM while hot, written to NVRAM after its last forward
  use, prefetched back to DRAM just before its first backward use.
  Costs two synchronous copies; frees DRAM across the gap.  This mode
  produces Figure 10's signature: NVRAM writes only during the forward
  pass, NVRAM reads only during the backward pass.

The objective is total execution-time overhead (profile-derived, like
AutoTM's kernel profiles); the constraints cap live DRAM bytes at every
point in the schedule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import PlatformConfig
from repro.errors import ConfigurationError, InvariantError
from repro.nn.autodiff import TrainingGraph
from repro.nn.ir import Tensor
from repro.nn.liveness import TensorLife, analyze_liveness


class PlacementMode(enum.Enum):
    DRAM = "dram"
    NVRAM = "nvram"
    STASH = "stash"


@dataclass(frozen=True)
class CandidateTensor:
    """One transient tensor with its placement-relevant facts."""

    tensor: Tensor
    life: TensorLife
    #: Extra seconds if resident in NVRAM (all uses pay bandwidth delta).
    nvram_cost: float
    #: Seconds for the stash + restore copies (None = not eligible).
    stash_cost: Optional[float]
    #: Last op index that touches the tensor in the forward pass.
    last_forward_use: Optional[int]
    #: First op index that touches the tensor in the backward pass.
    first_backward_use: Optional[int]

    @property
    def stash_eligible(self) -> bool:
        return self.stash_cost is not None


@dataclass(frozen=True)
class TensorPlacement:
    """The chosen mode for one tensor."""

    tensor: Tensor
    mode: PlacementMode
    #: For STASH: write to NVRAM after this op index.
    stash_after: Optional[int] = None
    #: For STASH: read back to DRAM before this op index.
    restore_before: Optional[int] = None


@dataclass
class PlacementPlan:
    """Solver output: a placement per transient tensor."""

    placements: Dict[Tensor, TensorPlacement]
    objective_seconds: float
    budget_bytes: int
    solver: str

    def count(self, mode: PlacementMode) -> int:
        return sum(1 for p in self.placements.values() if p.mode is mode)


@dataclass
class PlacementProblem:
    """Inputs to the placement solvers."""

    training: TrainingGraph
    budget_bytes: int
    candidates: List[CandidateTensor]
    #: DRAM bytes pinned at every op (weights + small tensors).
    pinned_bytes: int
    num_ops: int
    #: Capacity constraints are enforced at every N-th op.
    capacity_stride: int = 8

    @classmethod
    def build(
        cls,
        training: TrainingGraph,
        platform: PlatformConfig,
        budget_bytes: int,
        *,
        min_candidate_bytes: Optional[int] = None,
        min_stash_gap: int = 8,
        capacity_stride: int = 8,
    ) -> "PlacementProblem":
        """Derive the problem from a training graph and a platform.

        Tensors smaller than ``min_candidate_bytes`` are pinned to DRAM
        (their total is charged as a constant), mirroring AutoTM's
        restriction to profitable tensors.
        """
        if budget_bytes <= 0:
            raise ConfigurationError("DRAM budget must be positive")
        graph = training.graph
        socket = platform.socket
        if min_candidate_bytes is None:
            min_candidate_bytes = max(platform.line_size, budget_bytes // 10_000)

        dram_bw = socket.dram_bandwidth
        nvram_read_bw = socket.nvram_read_bandwidth
        nvram_write_bw = socket.nvram_write_bandwidth
        read_penalty = 1.0 / nvram_read_bw - 1.0 / dram_bw
        write_penalty = 1.0 / nvram_write_bw - 1.0 / dram_bw

        lives = analyze_liveness(graph)
        life_of = {life.tensor: life for life in lives}

        reads: Dict[Tensor, List[int]] = {}
        writes: Dict[Tensor, List[int]] = {}
        for index, op in enumerate(graph.ops):
            for tensor in op.inputs:
                if not tensor.weight:
                    reads.setdefault(tensor, []).append(index)
            for tensor in op.outputs:
                if not tensor.weight:
                    writes.setdefault(tensor, []).append(index)

        pinned = sum(t.size_bytes for t in graph.weights)
        candidates: List[CandidateTensor] = []
        for tensor, life in life_of.items():
            if tensor.size_bytes < min_candidate_bytes:
                pinned += tensor.size_bytes
                continue
            size = tensor.size_bytes
            n_reads = len(reads.get(tensor, ()))
            n_writes = len(writes.get(tensor, ()))
            # Kernel writes use write-allocating stores: an ownership
            # read plus the write itself.
            nvram_cost = size * (
                n_reads * read_penalty + n_writes * (write_penalty + read_penalty)
            )

            uses = sorted(reads.get(tensor, []) + writes.get(tensor, []))
            fwd_uses = [u for u in uses if u < training.backward_start]
            bwd_uses = [u for u in uses if u >= training.backward_start]
            last_fwd = fwd_uses[-1] if fwd_uses else None
            first_bwd = bwd_uses[0] if bwd_uses else None
            stash_cost = None
            if (
                last_fwd is not None
                and first_bwd is not None
                and first_bwd - last_fwd >= min_stash_gap
            ):
                # Synchronous copy out (NT stores) and prefetch back.
                stash_cost = size / nvram_write_bw + size / nvram_read_bw
            candidates.append(
                CandidateTensor(
                    tensor=tensor,
                    life=life,
                    nvram_cost=nvram_cost,
                    stash_cost=stash_cost,
                    last_forward_use=last_fwd,
                    first_backward_use=first_bwd,
                )
            )

        return cls(
            training=training,
            budget_bytes=budget_bytes,
            candidates=candidates,
            pinned_bytes=pinned,
            num_ops=len(graph.ops),
            capacity_stride=capacity_stride,
        )

    def capacity_checkpoints(self) -> List[int]:
        """Op indices where the DRAM capacity constraint is enforced."""
        points = list(range(0, self.num_ops, self.capacity_stride))
        if points[-1] != self.num_ops - 1:
            points.append(self.num_ops - 1)
        return points

    def occupies_dram(
        self, candidate: CandidateTensor, mode: PlacementMode, op_index: int
    ) -> bool:
        """Does the tensor hold DRAM at ``op_index`` under ``mode``?"""
        life = candidate.life
        if not life.live_at(op_index):
            return False
        if mode is PlacementMode.DRAM:
            return True
        if mode is PlacementMode.NVRAM:
            return False
        if candidate.stash_cost is None:
            raise ConfigurationError(
                f"tensor {candidate.tensor.name!r} is not stash-eligible"
            )
        if candidate.last_forward_use is None or candidate.first_backward_use is None:
            raise InvariantError(
                f"stash-eligible tensor {candidate.tensor.name!r} lacks a "
                "forward/backward use boundary"
            )
        return (
            op_index <= candidate.last_forward_use
            or op_index >= candidate.first_backward_use
        )

    def placement_for(
        self, candidate: CandidateTensor, mode: PlacementMode
    ) -> TensorPlacement:
        if mode is PlacementMode.STASH:
            return TensorPlacement(
                tensor=candidate.tensor,
                mode=mode,
                stash_after=candidate.last_forward_use,
                restore_before=candidate.first_backward_use,
            )
        return TensorPlacement(tensor=candidate.tensor, mode=mode)

    def evaluate(self, plan: PlacementPlan) -> float:
        """Total modelled overhead (seconds) of a placement plan."""
        total = 0.0
        by_tensor = plan.placements
        for candidate in self.candidates:
            placement = by_tensor[candidate.tensor]
            if placement.mode is PlacementMode.NVRAM:
                total += candidate.nvram_cost
            elif placement.mode is PlacementMode.STASH:
                total += candidate.stash_cost or 0.0
        return total

    def is_feasible(self, plan: PlacementPlan) -> bool:
        """Does the plan respect the DRAM budget at every checkpoint?"""
        for point in self.capacity_checkpoints():
            used = self.pinned_bytes
            for candidate in self.candidates:
                placement = plan.placements[candidate.tensor]
                if self.occupies_dram(candidate, placement.mode, point):
                    used += candidate.tensor.size_bytes
            if used > self.budget_bytes:
                return False
        return True
