"""Greedy placement baseline.

Start with everything in DRAM and, while any schedule checkpoint
exceeds the budget, demote the tensor with the lowest overhead per byte
of relief — preferring the stash mode when eligible.  Much faster than
the ILP and usually within a few percent of it; also serves as the
fallback when the ILP hits its time limit.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autotm.model import (
    CandidateTensor,
    PlacementMode,
    PlacementPlan,
    PlacementProblem,
)
from repro.errors import SolverError
from repro.nn.ir import Tensor


def _cheapest_demotion(candidate: CandidateTensor) -> PlacementMode:
    if candidate.stash_eligible and (candidate.stash_cost or 0.0) <= candidate.nvram_cost:
        return PlacementMode.STASH
    return PlacementMode.NVRAM


def solve_greedy(problem: PlacementProblem) -> PlacementPlan:
    """Greedy demotion until every capacity checkpoint is satisfied."""
    candidates = problem.candidates
    checkpoints = problem.capacity_checkpoints()
    n, m = len(candidates), len(checkpoints)

    # occupancy[mode][i, j]: candidate i holds DRAM at checkpoint j.
    dram_occ = np.zeros((n, m), dtype=bool)
    demoted_occ = np.zeros((n, m), dtype=bool)
    demotion_modes = [_cheapest_demotion(c) for c in candidates]
    for i, candidate in enumerate(candidates):
        for j, point in enumerate(checkpoints):
            dram_occ[i, j] = problem.occupies_dram(candidate, PlacementMode.DRAM, point)
            demoted_occ[i, j] = problem.occupies_dram(
                candidate, demotion_modes[i], point
            )

    sizes = np.array([c.tensor.size_bytes for c in candidates], dtype=np.int64)
    usage = problem.pinned_bytes + (sizes[:, None] * dram_occ).sum(axis=0)
    budget = problem.budget_bytes

    def demotion_cost_per_byte(i: int) -> float:
        candidate = candidates[i]
        cost = (
            candidate.stash_cost
            if demotion_modes[i] is PlacementMode.STASH
            else candidate.nvram_cost
        )
        return (cost or 0.0) / candidate.tensor.size_bytes

    order = sorted(range(n), key=demotion_cost_per_byte)
    modes: Dict[Tensor, PlacementMode] = {
        c.tensor: PlacementMode.DRAM for c in candidates
    }

    cursor = 0
    while (usage > budget).any() and cursor < len(order):
        i = order[cursor]
        cursor += 1
        relief = dram_occ[i] & ~demoted_occ[i]
        if not (relief & (usage > budget)).any():
            continue
        usage = usage - sizes[i] * relief
        modes[candidates[i].tensor] = demotion_modes[i]

    # Second phase: stashed tensors still hold DRAM at their endpoints;
    # if that alone breaks the budget, push them all the way to NVRAM.
    cursor = 0
    while (usage > budget).any() and cursor < len(order):
        i = order[cursor]
        cursor += 1
        current = modes[candidates[i].tensor]
        if current is PlacementMode.NVRAM:
            continue
        current_occ = demoted_occ[i] if current is not PlacementMode.DRAM else dram_occ[i]
        relief = current_occ  # NVRAM occupies nothing
        if not (relief & (usage > budget)).any():
            continue
        usage = usage - sizes[i] * relief
        modes[candidates[i].tensor] = PlacementMode.NVRAM

    if (usage > budget).any():
        raise SolverError(
            "greedy placement cannot satisfy the DRAM budget: "
            f"{int((usage > budget).sum())} checkpoints remain over budget "
            "even with every candidate in NVRAM (pinned data exceeds budget)"
        )

    placements = {
        c.tensor: problem.placement_for(c, modes[c.tensor]) for c in candidates
    }
    plan = PlacementPlan(
        placements=placements,
        objective_seconds=0.0,
        budget_bytes=problem.budget_bytes,
        solver="greedy",
    )
    plan.objective_seconds = problem.evaluate(plan)
    return plan
