"""AutoTM: software-managed tensor placement for heterogeneous memory.

Reproduces Hildebrand et al.'s AutoTM (ASPLOS'20) as the paper's CNN
mitigation strategy (Section VII-A1): a profile-guided integer linear
program decides, for every intermediate tensor, whether it lives in
DRAM, lives in NVRAM, or is *stashed* — written to NVRAM after its last
forward use and prefetched back before its backward use.  The executor
then runs the training schedule in 1LM (app-direct) with explicit,
synchronous data movement, eliding every unnecessary dirty write-back
the hardware cache would have generated.
"""

from repro.autotm.model import (
    PlacementMode,
    PlacementPlan,
    PlacementProblem,
    TensorPlacement,
)
from repro.autotm.ilp import solve_ilp
from repro.autotm.greedy import solve_greedy
from repro.autotm.executor import AutoTMResult, execute_autotm

__all__ = [
    "AutoTMResult",
    "PlacementMode",
    "PlacementPlan",
    "PlacementProblem",
    "TensorPlacement",
    "execute_autotm",
    "solve_greedy",
    "solve_ilp",
]
