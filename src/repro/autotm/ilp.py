"""Exact placement via integer linear programming (scipy / HiGHS).

Mirrors AutoTM's formulation at tensor granularity: one binary variable
per (tensor, mode), a one-hot constraint per tensor, and a DRAM
capacity constraint per schedule checkpoint.  Solved with
``scipy.optimize.milp`` (the HiGHS branch-and-bound solver).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.autotm.model import (
    CandidateTensor,
    PlacementMode,
    PlacementPlan,
    PlacementProblem,
)
from repro.errors import SolverError
from repro.nn.ir import Tensor


def _variables(problem: PlacementProblem) -> List[Tuple[CandidateTensor, PlacementMode]]:
    variables: List[Tuple[CandidateTensor, PlacementMode]] = []
    for candidate in problem.candidates:
        variables.append((candidate, PlacementMode.DRAM))
        variables.append((candidate, PlacementMode.NVRAM))
        if candidate.stash_eligible:
            variables.append((candidate, PlacementMode.STASH))
    return variables


def solve_ilp(problem: PlacementProblem, time_limit: float = 120.0) -> PlacementPlan:
    """Solve the placement ILP; raises :class:`SolverError` on failure."""
    variables = _variables(problem)
    n = len(variables)
    if not n:
        return PlacementPlan(
            placements={}, objective_seconds=0.0, budget_bytes=problem.budget_bytes,
            solver="ilp",
        )

    cost = np.zeros(n)
    for j, (candidate, mode) in enumerate(variables):
        if mode is PlacementMode.NVRAM:
            cost[j] = candidate.nvram_cost
        elif mode is PlacementMode.STASH:
            cost[j] = candidate.stash_cost or 0.0

    constraints = []

    # One-hot: each tensor picks exactly one mode.
    tensor_index = {c.tensor: i for i, c in enumerate(problem.candidates)}
    rows = [tensor_index[c.tensor] for c, _ in variables]
    onehot = sparse.csr_matrix(
        (np.ones(n), (rows, np.arange(n))), shape=(len(problem.candidates), n)
    )
    ones = np.ones(len(problem.candidates))
    constraints.append(LinearConstraint(onehot, ones, ones))

    # Capacity at every checkpoint.
    checkpoints = problem.capacity_checkpoints()
    cap_rows: List[int] = []
    cap_cols: List[int] = []
    cap_vals: List[float] = []
    for i, point in enumerate(checkpoints):
        for j, (candidate, mode) in enumerate(variables):
            if problem.occupies_dram(candidate, mode, point):
                cap_rows.append(i)
                cap_cols.append(j)
                cap_vals.append(float(candidate.tensor.size_bytes))
    if cap_rows:
        capacity = sparse.csr_matrix(
            (cap_vals, (cap_rows, cap_cols)), shape=(len(checkpoints), n)
        )
        upper = np.full(len(checkpoints), float(problem.budget_bytes - problem.pinned_bytes))
        constraints.append(
            LinearConstraint(capacity, np.full(len(checkpoints), -np.inf), upper)
        )

    result = milp(
        c=cost,
        constraints=constraints,
        integrality=np.ones(n),
        bounds=Bounds(0, 1),
        options={"time_limit": time_limit},
    )
    if not result.success or result.x is None:
        raise SolverError(f"HiGHS failed to solve the placement ILP: {result.message}")

    placements: Dict[Tensor, object] = {}
    for j, (candidate, mode) in enumerate(variables):
        if result.x[j] > 0.5:
            placements[candidate.tensor] = problem.placement_for(candidate, mode)
    missing = [c for c in problem.candidates if c.tensor not in placements]
    if missing:
        raise SolverError(f"{len(missing)} tensors received no placement")

    return PlacementPlan(
        placements=placements,  # type: ignore[arg-type]
        objective_seconds=float(result.fun),
        budget_bytes=problem.budget_bytes,
        solver="ilp",
    )
