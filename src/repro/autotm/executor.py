"""AutoTM executor: 1LM training with explicit tensor movement.

Runs the training schedule against a flat (app-direct) backend.  Every
tensor gets physical placement from the solver's plan: DRAM-resident
tensors live in a first-fit DRAM pool, NVRAM-resident tensors in the
NVRAM region, and stashed tensors get a DRAM slot while hot plus an
NVRAM slot across their forward-to-backward gap.  Movement is
synchronous, between kernels, using nontemporal stores — matching
AutoTM's design and reproducing Figure 10: NVRAM writes happen only in
the forward pass (stash-out), NVRAM reads only in the backward pass
(prefetch-back), and the total NVRAM traffic is roughly the stashed
bytes rather than the cache's amplified write-backs.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro import obs
from repro.autotm.model import PlacementMode, PlacementPlan
from repro.config import BATCH_LINES, PlatformConfig
from repro.errors import ConfigurationError, InvariantError
from repro.memsys.backends import FlatBackend
from repro.perf.counters import (
    AccessContext,
    AccessKind,
    Pattern,
    Traffic,
)
from repro.memsys.topology import AddressMap
from repro.nn.autodiff import TrainingGraph
from repro.nn.executor import KernelRecord, compute_time
from repro.nn.ir import Op, OpKind, Tensor
from repro.nn.liveness import analyze_liveness
from repro.nn.planner import FirstFitArena
from repro.perf.sampler import CounterSampler

_BATCH_LINES = BATCH_LINES


@dataclass
class AutoTMResult:
    """Outcome of one AutoTM training iteration."""

    plan: PlacementPlan
    records: List[KernelRecord] = field(default_factory=list)
    stash_bytes: int = 0
    restore_bytes: int = 0
    #: Counter trace sampled after every kernel and move (Figure 10).
    trace: object = None

    @property
    def seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    @property
    def traffic(self) -> Traffic:
        total = Traffic()
        for record in self.records:
            total += record.traffic
        return total


class _Addresser:
    """Physical line addresses for every tensor under an AutoTM plan."""

    def __init__(
        self,
        training: TrainingGraph,
        plan: PlacementPlan,
        platform: PlatformConfig,
        sample_stride: int,
    ) -> None:
        graph = training.graph
        line = platform.line_size
        alignment = max(1024, sample_stride * line)
        self.line_size = line
        self.sample_stride = sample_stride
        self.dram_lines = platform.socket.dram_capacity // line

        dram = FirstFitArena(alignment)
        nvram = FirstFitArena(alignment)
        num_ops = len(graph.ops)

        #: tensor -> (forward-phase offset, backward-phase offset, is_dram
        #: fwd, is_dram bwd, switch op index).  Non-stashed tensors have
        #: identical phases.
        self._slots: Dict[Tensor, tuple] = {}
        #: NVRAM parking slot per stashed tensor.
        self._stash_slots: Dict[Tensor, int] = {}

        for tensor in graph.weights:
            offset = dram.allocate(tensor.size_bytes, 0, num_ops - 1)
            self._slots[tensor] = (offset, offset, True, True, None)

        lives = {life.tensor: life for life in analyze_liveness(graph)}
        for tensor, life in lives.items():
            placement = plan.placements.get(tensor)
            mode = placement.mode if placement is not None else PlacementMode.DRAM
            if mode is PlacementMode.DRAM:
                offset = dram.allocate(tensor.size_bytes, life.start, life.end)
                self._slots[tensor] = (offset, offset, True, True, None)
            elif mode is PlacementMode.NVRAM:
                offset = nvram.allocate(tensor.size_bytes, life.start, life.end)
                self._slots[tensor] = (offset, offset, False, False, None)
            else:
                if placement is None:
                    raise InvariantError(
                        f"tensor {tensor.name!r} has stash mode but no placement"
                    )
                stash_after = placement.stash_after
                restore_before = placement.restore_before
                hot = dram.allocate(tensor.size_bytes, life.start, stash_after)
                cold = nvram.allocate(tensor.size_bytes, stash_after, restore_before)
                warm = dram.allocate(tensor.size_bytes, restore_before, life.end)
                self._slots[tensor] = (hot, warm, True, True, restore_before)
                self._stash_slots[tensor] = cold

        if dram.high_water > platform.socket.dram_capacity:
            raise ConfigurationError(
                f"AutoTM DRAM pool overflows the device: {dram.high_water} bytes"
            )
        self.nvram_base_line = self.dram_lines
        self.nvram_high_water_lines = nvram.high_water // line

    def _lines_for(self, offset_bytes: int, size_bytes: int, in_dram: bool) -> np.ndarray:
        base = 0 if in_dram else self.nvram_base_line
        first = base + offset_bytes // self.line_size
        count = -(-size_bytes // self.line_size)
        return first + np.arange(0, count, self.sample_stride, dtype=np.int64)

    def lines(self, tensor: Tensor, op_index: int) -> np.ndarray:
        """Current address of ``tensor`` when op ``op_index`` runs."""
        fwd, bwd, fwd_dram, bwd_dram, switch = self._slots[tensor]
        if switch is None or op_index < switch:
            return self._lines_for(fwd, tensor.size_bytes, fwd_dram)
        return self._lines_for(bwd, tensor.size_bytes, bwd_dram)

    def stash_lines(self, tensor: Tensor) -> np.ndarray:
        """The NVRAM slot a stashed tensor is parked in."""
        return self._lines_for(self._stash_slots[tensor], tensor.size_bytes, False)

    def total_lines(self) -> int:
        return self.nvram_base_line + max(1, self.nvram_high_water_lines)


def execute_autotm(
    training: TrainingGraph,
    plan: PlacementPlan,
    platform: PlatformConfig,
    *,
    threads: int = 24,
    sample_stride: int = 16,
) -> AutoTMResult:
    """Run one AutoTM training iteration in app-direct (1LM) mode."""
    graph = training.graph
    addresser = _Addresser(training, plan, platform, sample_stride)

    nvram_capacity_lines = platform.socket.nvram_capacity // platform.line_size
    if addresser.nvram_high_water_lines > nvram_capacity_lines:
        raise ConfigurationError("AutoTM NVRAM pool overflows the device")
    address_map = AddressMap.numa_preferred(
        addresser.dram_lines, max(1, nvram_capacity_lines)
    )
    backend = FlatBackend(platform, address_map)
    sampler = CounterSampler(backend.counters)

    ctx = AccessContext(threads=threads, pattern=Pattern.SEQUENTIAL)
    move_ctx = ctx
    cpu = platform.socket.cpu
    weight = sample_stride

    # Movement schedule: stash after op i / restore before op j.
    stash_at: Dict[int, List[Tensor]] = {}
    restore_at: Dict[int, List[Tensor]] = {}
    for tensor, placement in plan.placements.items():
        if placement.mode is PlacementMode.STASH:
            stash_at.setdefault(placement.stash_after, []).append(tensor)
            restore_at.setdefault(placement.restore_before, []).append(tensor)

    result = AutoTMResult(plan=plan)

    def stream(lines: np.ndarray, kind: AccessKind, context: AccessContext) -> None:
        for begin in range(0, lines.size, _BATCH_LINES):
            backend.access(lines[begin : begin + _BATCH_LINES], kind, context, weight=weight)

    def move(src: np.ndarray, dst: np.ndarray, op: Op, label: str) -> None:
        tele = obs.get()
        start = backend.counters.time
        with contextlib.ExitStack() as stack:
            span = (
                stack.enter_context(
                    tele.span(
                        "autotm.move",
                        cat="autotm",
                        clock=lambda: backend.counters.time,
                        label=label,
                        anchor_op=op.name,
                    )
                )
                if tele.enabled
                else None
            )
            with backend.epoch(move_ctx) as epoch:
                stream(src, AccessKind.LLC_READ, move_ctx)
                # Nontemporal stores: no ownership read, straight write.
                stream(dst, AccessKind.LLC_WRITE, move_ctx)
            backend.counters.retire(
                int(epoch.traffic.demand_bytes * cpu.instructions_per_byte)
            )
            if span is not None:
                span.set(moved_bytes=epoch.traffic.demand_bytes)
        if tele.enabled:
            tele.counter(
                "repro_autotm_moved_bytes_total", "bytes moved by AutoTM stash/restore"
            ).inc(epoch.traffic.demand_bytes)
        result.records.append(
            KernelRecord(
                op=Op(name=label, kind=OpKind.MOVE),
                start=start,
                end=backend.counters.time,
                traffic=epoch.traffic,
                tags=epoch.tags,
                compute_seconds=0.0,
                memory_seconds=epoch.memory_seconds,
            )
        )
        sampler.sample(label=label)

    for index, op in enumerate(graph.ops):
        for tensor in restore_at.get(index, ()):  # prefetch back to DRAM
            result.restore_bytes += tensor.size_bytes
            move(
                addresser.stash_lines(tensor),
                addresser.lines(tensor, index),
                op,
                f"restore_{tensor.name}",
            )

        tele = obs.get()
        start = backend.counters.time
        with contextlib.ExitStack() as stack:
            if tele.enabled:
                stack.enter_context(
                    tele.span(
                        "autotm.kernel",
                        cat="autotm",
                        clock=lambda: backend.counters.time,
                        op=op.name,
                        kind=op.kind.value,
                        stashes=len(stash_at.get(index, ())),
                        restores=len(restore_at.get(index, ())),
                    )
                )
            with backend.epoch(ctx) as epoch:
                if op.kind is not OpKind.PARAMETER:
                    for tensor in op.inputs:
                        stream(addresser.lines(tensor, index), AccessKind.LLC_READ, ctx)
                    if op.kind is OpKind.SGD_UPDATE:
                        stream(
                            addresser.lines(op.inputs[0], index), AccessKind.LLC_WRITE, ctx
                        )
                    for tensor in op.outputs:
                        lines = addresser.lines(tensor, index)
                        stream(lines, AccessKind.LLC_READ, ctx)  # RFO
                        stream(lines, AccessKind.LLC_WRITE, ctx)
                epoch.add_compute(compute_time(op, cpu.peak_flops))
        backend.counters.retire(
            int(op.flops * cpu.instructions_per_flop)
            + int(epoch.traffic.demand_bytes * cpu.instructions_per_byte)
        )
        result.records.append(
            KernelRecord(
                op=op,
                start=start,
                end=backend.counters.time,
                traffic=epoch.traffic,
                tags=epoch.tags,
                compute_seconds=epoch.compute_seconds,
                memory_seconds=epoch.memory_seconds,
            )
        )
        sampler.sample(label=op.name)

        for tensor in stash_at.get(index, ()):  # write out to NVRAM
            result.stash_bytes += tensor.size_bytes
            move(
                addresser.lines(tensor, index),
                addresser.stash_lines(tensor),
                op,
                f"stash_{tensor.name}",
            )

    result.trace = sampler.trace()
    return result
