"""DLRM-style embedding tables and Zipf-skewed lookup generation.

A recommendation model's memory footprint is dominated by sparse
embedding tables — one per categorical feature, each up to hundreds of
GB — accessed by small random gathers whose popularity follows a heavy
Zipf law (Naumov et al., DLRM; Eisenman et al., Bandana).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EmbeddingTable:
    """One categorical feature's embedding table."""

    name: str
    rows: int
    dim: int = 64
    dtype_bytes: int = 4
    #: Zipf exponent for this feature's popularity (1.0 = classic).
    alpha: float = 1.05
    #: Lookups per sample (multi-hot pooling factor).
    pooling: int = 32

    def __post_init__(self) -> None:
        if self.rows < 1 or self.dim < 1 or self.pooling < 1:
            raise ConfigurationError(f"invalid table geometry for {self.name!r}")
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")

    @property
    def row_bytes(self) -> int:
        return self.dim * self.dtype_bytes

    @property
    def size_bytes(self) -> int:
        return self.rows * self.row_bytes


@dataclass
class EmbeddingModel:
    """A set of embedding tables plus dense-MLP compute."""

    tables: List[EmbeddingTable]
    #: Flops of the dense (bottom + top) MLPs per sample.
    mlp_flops_per_sample: float = 2e6

    @property
    def size_bytes(self) -> int:
        return sum(t.size_bytes for t in self.tables)

    @classmethod
    def dlrm_like(
        cls,
        num_tables: int = 26,
        rows_per_table: int = 160_000,
        dim: int = 64,
        alpha: float = 1.05,
        pooling: int = 32,
    ) -> "EmbeddingModel":
        """A DLRM-shaped model: many same-sized Zipf-skewed tables."""
        tables = [
            EmbeddingTable(
                name=f"table_{i}",
                rows=rows_per_table,
                dim=dim,
                alpha=alpha,
                pooling=pooling,
            )
            for i in range(num_tables)
        ]
        return cls(tables=tables)


@dataclass
class LookupTrace:
    """Per-table row indices for a run of batches."""

    model: EmbeddingModel
    batch_size: int
    #: ``lookups[b][t]`` — row indices into table t for batch b.
    lookups: List[List[np.ndarray]] = field(default_factory=list)

    @property
    def num_batches(self) -> int:
        return len(self.lookups)

    def row_frequencies(self, table_index: int) -> np.ndarray:
        """How often each row of one table is touched across the trace."""
        table = self.model.tables[table_index]
        counts = np.zeros(table.rows, dtype=np.int64)
        for batch in self.lookups:
            counts += np.bincount(batch[table_index], minlength=table.rows)
        return counts


def _zipf_rows(table: EmbeddingTable, count: int, rng: np.random.Generator) -> np.ndarray:
    """Bounded Zipf sampling over a table's rows via inverse CDF."""
    # P(rank r) ~ r^-alpha over ranks 1..rows; approximate inverse CDF
    # with the continuous power law, which is accurate for large tables.
    u = rng.random(count)
    if abs(table.alpha - 1.0) < 1e-9:
        ranks = np.exp(u * np.log(table.rows))
    else:
        power = 1.0 - table.alpha
        ranks = (1.0 + u * (table.rows**power - 1.0)) ** (1.0 / power)
    return np.minimum(ranks.astype(np.int64), table.rows - 1)


def popularity_permutation(table: EmbeddingTable, index: int) -> np.ndarray:
    """The fixed rank-to-row mapping of one table.

    Which rows are popular is a property of the *dataset*, not of a
    particular trace: every trace over the same model shares these
    permutations (so a placement learned from a profiling trace
    transfers to evaluation traces), while hot rows remain scattered
    through the address space.
    """
    rng = np.random.default_rng(0xE0_0000 + index)
    return rng.permutation(table.rows)


def generate_trace(
    model: EmbeddingModel,
    batch_size: int,
    num_batches: int,
    seed: int = 0,
) -> LookupTrace:
    """Generate Zipf-skewed lookups with the model's fixed popularity."""
    if batch_size < 1 or num_batches < 1:
        raise ConfigurationError("batch_size and num_batches must be >= 1")
    rng = np.random.default_rng(seed)
    permutations = [
        popularity_permutation(table, i) for i, table in enumerate(model.tables)
    ]
    trace = LookupTrace(model=model, batch_size=batch_size)
    for _ in range(num_batches):
        per_table = []
        for t_index, table in enumerate(model.tables):
            ranks = _zipf_rows(table, batch_size * table.pooling, rng)
            per_table.append(permutations[t_index][ranks])
        trace.lookups.append(per_table)
    return trace
