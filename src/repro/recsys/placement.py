"""Bandana-style hot-row placement for embedding tables.

Eisenman et al. (Bandana, cited by the paper as motivation) keep the
popular fraction of each embedding table in DRAM and serve the long
tail from NVM.  Given a profiling trace, this planner ranks rows by
observed access frequency and pins the most valuable ones in DRAM under
a byte budget — the software analogue of the DRAM cache, but loaded by
*measured popularity* instead of insert-on-miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.recsys.embedding import EmbeddingModel, LookupTrace


@dataclass
class HotRowPlacement:
    """Which rows of each table live in DRAM."""

    model: EmbeddingModel
    #: Per table: boolean mask over rows, True = DRAM-resident.
    hot_masks: List[np.ndarray]
    budget_bytes: int

    @property
    def hot_bytes(self) -> int:
        return sum(
            int(mask.sum()) * table.row_bytes
            for mask, table in zip(self.hot_masks, self.model.tables)
        )

    @property
    def hot_rows(self) -> int:
        return sum(int(mask.sum()) for mask in self.hot_masks)

    def expected_hit_fraction(self, trace: LookupTrace) -> float:
        """Fraction of trace lookups served from DRAM under this placement."""
        hits = 0
        total = 0
        for t_index, mask in enumerate(self.hot_masks):
            frequencies = trace.row_frequencies(t_index)
            hits += int(frequencies[mask].sum())
            total += int(frequencies.sum())
        return hits / total if total else 0.0


def plan_hot_rows(
    model: EmbeddingModel,
    trace: LookupTrace,
    budget_bytes: int,
) -> HotRowPlacement:
    """Greedy global placement: highest hits-per-byte rows first."""
    if budget_bytes < 0:
        raise ConfigurationError("budget must be non-negative")

    values = []  # hits per byte
    table_ids = []
    row_ids = []
    costs = []
    for t_index, table in enumerate(model.tables):
        frequencies = trace.row_frequencies(t_index)
        touched = np.flatnonzero(frequencies)
        values.append(frequencies[touched] / table.row_bytes)
        table_ids.append(np.full(touched.size, t_index, dtype=np.int64))
        row_ids.append(touched)
        costs.append(np.full(touched.size, table.row_bytes, dtype=np.int64))

    masks = [np.zeros(table.rows, dtype=bool) for table in model.tables]
    if values:
        value = np.concatenate(values)
        table_id = np.concatenate(table_ids)
        row_id = np.concatenate(row_ids)
        cost = np.concatenate(costs)
        order = np.argsort(-value, kind="stable")
        cumulative = np.cumsum(cost[order])
        chosen = order[cumulative <= budget_bytes]
        for t_index in range(len(model.tables)):
            in_table = chosen[table_id[chosen] == t_index]
            masks[t_index][row_id[in_table]] = True
    return HotRowPlacement(model=model, hot_masks=masks, budget_bytes=budget_bytes)
