"""Recommendation-model case study (extension).

The paper's introduction motivates NVRAM with "emerging machine learning
models in NLP and recommendation engines (such as GPT3 and DLRM)" and
cites Bandana (Eisenman et al.) — NVM for storing deep-learning
recommendation models — among the systems driving DRAM cost pressure.
The evaluation never returns to that workload; this package builds it:
DLRM-style embedding tables with Zipf-skewed lookups, run in 2LM against
a Bandana-style software placement that pins the popular rows in DRAM.
"""

from repro.recsys.embedding import EmbeddingModel, EmbeddingTable, LookupTrace, generate_trace
from repro.recsys.placement import HotRowPlacement, plan_hot_rows
from repro.recsys.runner import RecsysResult, run_recsys

__all__ = [
    "EmbeddingModel",
    "EmbeddingTable",
    "HotRowPlacement",
    "LookupTrace",
    "RecsysResult",
    "generate_trace",
    "plan_hot_rows",
    "run_recsys",
]
