"""Executes embedding workloads against the memory system.

Three configurations, paralleling the paper's case studies:

* ``2lm``     — all tables behind the hardware DRAM cache.
* ``bandana`` — 1LM: popularity-placed hot rows in DRAM, the long tail
  in NVRAM (software-managed).
* ``nvram``   — 1LM, everything in NVRAM (the no-management floor).

Each batch gathers the embedding rows its samples reference (random
reads at row granularity), optionally scatters gradient updates back
(training), and overlaps the dense MLP compute.  Lines touched more
than once in a batch are deduplicated — the on-chip cache absorbs
repeats of hot rows within a batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cache import DirectMappedCache
from repro.config import BATCH_LINES, PlatformConfig
from repro.errors import ConfigurationError
from repro.memsys.backends import CachedBackend, FlatBackend, MemoryBackend
from repro.perf.counters import (
    AccessContext,
    AccessKind,
    Pattern,
    TagStats,
    Traffic,
)
from repro.memsys.topology import AddressMap
from repro.recsys.embedding import EmbeddingModel, LookupTrace
from repro.recsys.placement import HotRowPlacement

_BATCH_LINES = BATCH_LINES

MODES = ("2lm", "bandana", "nvram")


@dataclass
class RecsysResult:
    """Outcome of one embedding-workload run."""

    mode: str
    batches: int
    batch_size: int
    seconds: float
    traffic: Traffic
    tags: TagStats
    dram_hit_fraction: float  # fraction of lookups served from DRAM

    @property
    def samples_per_second(self) -> float:
        if not self.seconds:
            return 0.0
        return self.batches * self.batch_size / self.seconds


class _Layout:
    """Line addresses for every (table, row) under one configuration."""

    def __init__(
        self,
        model: EmbeddingModel,
        line_size: int,
        placement: Optional[HotRowPlacement],
        dram_lines: int,
    ) -> None:
        self.model = model
        self.line_size = line_size
        self.placement = placement
        # Full tables live contiguously in the "cold" region.
        self._table_base: List[int] = []
        cursor = dram_lines  # cold region starts after the DRAM window
        for table in model.tables:
            self._table_base.append(cursor)
            cursor += -(-table.size_bytes // line_size)
        self.total_lines = cursor
        # Hot copies pack into the DRAM window.
        self._hot_slot: List[np.ndarray] = []
        if placement is not None:
            slot = 0
            for t_index, table in enumerate(model.tables):
                slots = np.full(table.rows, -1, dtype=np.int64)
                hot = np.flatnonzero(placement.hot_masks[t_index])
                lines_per_row = -(-table.row_bytes // line_size)
                slots[hot] = slot + np.arange(hot.size) * lines_per_row
                slot += hot.size * lines_per_row
                self._hot_slot.append(slots)
            if slot > dram_lines:
                raise ConfigurationError("hot rows overflow the DRAM window")

    def row_lines(self, t_index: int, rows: np.ndarray) -> np.ndarray:
        """Line addresses covering the given rows (deduplicated)."""
        table = self.model.tables[t_index]
        lines_per_row = -(-table.row_bytes // self.line_size)
        unique_rows = np.unique(rows)
        if self.placement is None:
            first = self._table_base[t_index] + unique_rows * lines_per_row
        else:
            slots = self._hot_slot[t_index][unique_rows]
            cold = self._table_base[t_index] + unique_rows * lines_per_row
            first = np.where(slots >= 0, slots, cold)
        expanded = first[:, None] + np.arange(lines_per_row, dtype=np.int64)
        return expanded.reshape(-1)


def run_recsys(
    model: EmbeddingModel,
    trace: LookupTrace,
    platform: PlatformConfig,
    mode: str = "2lm",
    *,
    placement: Optional[HotRowPlacement] = None,
    training: bool = True,
    threads: int = 24,
) -> RecsysResult:
    """Run a lookup trace under one memory configuration."""
    if mode not in MODES:
        raise ConfigurationError(f"unknown mode {mode!r}; pick from {MODES}")
    if mode == "bandana" and placement is None:
        raise ConfigurationError("bandana mode needs a HotRowPlacement")

    line = platform.line_size
    dram_lines = platform.socket.dram_capacity // line
    layout = _Layout(
        model, line, placement if mode == "bandana" else None, dram_lines
    )

    backend: MemoryBackend
    if mode == "2lm":
        # All tables NVRAM-backed behind the cache; addresses relative 0.
        cache = DirectMappedCache(platform.socket.dram_capacity)
        backend = CachedBackend(platform, cache)
    else:
        nvram_lines = max(layout.total_lines - dram_lines, 1)
        backend = FlatBackend(
            platform, AddressMap.numa_preferred(dram_lines, nvram_lines)
        )

    row_bytes = model.tables[0].row_bytes if model.tables else line
    ctx = AccessContext(
        threads=threads,
        pattern=Pattern.RANDOM,
        granularity=max(line, min(row_bytes, 512)),
    )
    cpu = platform.socket.cpu

    start = backend.counters.snapshot()
    dram_lookups = 0
    total_lookups = 0
    for batch in trace.lookups:
        with backend.epoch(ctx) as epoch:
            for t_index, rows in enumerate(batch):
                lines = layout.row_lines(t_index, rows)
                _stream(backend, lines, AccessKind.LLC_READ, ctx)
                if training:
                    # Gradient update: rewrite the freshly read rows.
                    _stream(backend, lines, AccessKind.LLC_WRITE, ctx)
                total_lookups += rows.size
                if mode == "bandana":
                    hot = layout.placement.hot_masks[t_index][rows]
                    dram_lookups += int(hot.sum())
            epoch.add_compute(
                trace.batch_size * model.mlp_flops_per_sample / cpu.peak_flops
            )
        backend.counters.retire(
            int(trace.batch_size * model.mlp_flops_per_sample * cpu.instructions_per_flop)
        )
    delta = backend.counters.snapshot().delta(start)

    if mode == "2lm":
        hit_fraction = delta.tags.hit_rate
    elif mode == "bandana":
        hit_fraction = dram_lookups / total_lookups if total_lookups else 0.0
    else:
        hit_fraction = 0.0

    return RecsysResult(
        mode=mode,
        batches=trace.num_batches,
        batch_size=trace.batch_size,
        seconds=delta.time,
        traffic=delta.traffic,
        tags=delta.tags,
        dram_hit_fraction=hit_fraction,
    )


def _stream(backend, lines: np.ndarray, kind: AccessKind, ctx) -> None:
    for begin in range(0, lines.size, _BATCH_LINES):
        backend.access(lines[begin : begin + _BATCH_LINES], kind, ctx)
