"""``repro-report`` command-line entry point.

Usage::

    repro-report --store ./results
    repro-report --store ./results --out ./report --bench BENCH_*.json
    repro-report --store ./results --experiment fig4 --rebuild

Renders ``index.html`` plus one ``<experiment>.html`` page per
experiment present in the store, with every chart inlined as SVG so the
output directory is a self-contained static bundle.  Rendering is a
pure function of the store: running the command twice over an unchanged
store produces byte-identical files (CI gates on exactly that), so a
report diff is a *result* diff.

``--bench`` accepts any number of ``BENCH_*.json`` snapshots (the
``repro-experiment --bench`` output and the benchmark suite's exports);
they become perf-trajectory sparklines.  ``--rebuild`` drops the sqlite
catalog and re-indexes every payload instead of refreshing
incrementally — use it after hand-editing a store.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.report.bench import load_bench_history
from repro.report.render import render_experiment, render_index
from repro.service.catalog import Catalog
from repro.service.store import ResultStore


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description=(
            "Render HTML/SVG experiment reports from a content-addressed "
            "result store"
        ),
    )
    parser.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="result store directory (as written by repro-experiment --store)",
    )
    parser.add_argument(
        "--out",
        default="repro-report",
        metavar="DIR",
        help="output directory for the HTML bundle (default: ./repro-report)",
    )
    parser.add_argument(
        "--bench",
        nargs="*",
        default=[],
        metavar="FILE",
        help="BENCH_*.json snapshots to render as perf-trajectory sparklines",
    )
    parser.add_argument(
        "--experiment",
        metavar="NAME",
        help="render only this experiment's page (plus the index)",
    )
    parser.add_argument(
        "--rebuild",
        action="store_true",
        help="drop the sqlite catalog and re-index the whole store",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="enable structured logging at LEVEL (debug, info, warning, ...)",
    )
    args = parser.parse_args(argv)

    if args.log_level:
        try:
            obs.configure_logging(args.log_level)
        except ValueError as error:
            parser.error(str(error))

    store_root = Path(args.store)
    if not store_root.is_dir():
        parser.error(f"store directory {args.store!r} does not exist")

    store = ResultStore(store_root)
    catalog = Catalog(store)
    changed = catalog.rebuild() if args.rebuild else catalog.refresh()
    print(f"[catalog: {len(catalog)} rows ({changed} changed) -> {catalog.path}]")

    bench = load_bench_history(args.bench) if args.bench else None
    if bench is not None:
        print(f"[bench history: {len(bench)} snapshots]")

    names = sorted(
        summary["experiment"] for summary in catalog.experiments()
    )
    if args.experiment is not None:
        if args.experiment not in names:
            parser.error(
                f"experiment {args.experiment!r} has no stored runs; "
                f"present: {', '.join(names) or '(store is empty)'}"
            )
        names = [args.experiment]

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in names:
        html = render_experiment(catalog, name, bench=bench)
        if html is None:  # raced an emptying store; skip quietly
            continue
        path = out_dir / f"{name}.html"
        path.write_text(html)
        written.append(path)
    index_path = out_dir / "index.html"
    index_path.write_text(render_index(catalog, bench=bench))
    written.append(index_path)
    for path in written:
        print(f"[report -> {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
