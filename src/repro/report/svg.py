"""Deterministic SVG primitives: bar charts and sparklines.

No plotting library — every figure the reports need is a few dozen
rects and a polyline, and building them by hand keeps the output
byte-stable: coordinates are rounded to fixed precision and numbers go
through one pinned formatter, so identical inputs always produce
identical markup (the property the CI byte-stability gate asserts).
"""

from __future__ import annotations

import html as _html
from typing import List, Optional, Sequence, Tuple

#: Colors; picked once so pages and charts agree.
BAR_FILL = "#2f6f9f"
BAR_BASELINE = "#b0b8c0"
SPARK_STROKE = "#2f6f9f"
SPARK_DOT = "#d9534f"
TEXT_COLOR = "#333333"


def fmt(value: float, digits: int = 4) -> str:
    """Pinned numeric formatting for chart labels (``%.4g`` family)."""
    if value != value:  # NaN
        return "nan"
    text = f"{value:.{digits}g}"
    # 1e+06 -> 1e6: shorter and stable across float reprs.
    return text.replace("e+0", "e").replace("e-0", "e-").replace("e+", "e")


def _coord(value: float) -> str:
    """Fixed two-decimal coordinates so geometry never jitters."""
    return f"{value:.2f}"


def _esc(text: str) -> str:
    return _html.escape(str(text), quote=True)


def bar_chart(
    items: Sequence[Tuple[str, float]],
    title: str = "",
    unit: str = "",
    width: int = 640,
    baselines: Optional[Sequence[Optional[float]]] = None,
) -> str:
    """Horizontal bar chart; optional per-bar baseline ticks.

    ``items`` are ``(label, value)`` pairs rendered top to bottom in the
    order given.  ``baselines`` (same length) draws a reference tick per
    bar — the paper's published value next to the reproduced one.
    """
    bar_h, gap, left, right = 18, 8, 220, 80
    top = 28 if title else 8
    rows = list(items)
    ticks = list(baselines) if baselines is not None else [None] * len(rows)
    height = top + len(rows) * (bar_h + gap) + 8
    span = max(
        [abs(v) for _, v in rows] + [abs(t) for t in ticks if t is not None] + [1e-9]
    )
    scale = (width - left - right) / span
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img">'
    ]
    if title:
        parts.append(
            f'<text x="{left}" y="18" font-size="13" font-weight="bold" '
            f'fill="{TEXT_COLOR}">{_esc(title)}</text>'
        )
    for row, ((label, value), tick) in enumerate(zip(rows, ticks)):
        y = top + row * (bar_h + gap)
        bar_w = max(abs(value) * scale, 0.0)
        parts.append(
            f'<text x="{left - 8}" y="{_coord(y + bar_h * 0.72)}" '
            f'font-size="12" text-anchor="end" fill="{TEXT_COLOR}">'
            f"{_esc(label)}</text>"
        )
        parts.append(
            f'<rect x="{left}" y="{y}" width="{_coord(bar_w)}" '
            f'height="{bar_h}" fill="{BAR_FILL}" />'
        )
        if tick is not None:
            tick_x = left + abs(tick) * scale
            parts.append(
                f'<line x1="{_coord(tick_x)}" y1="{_coord(y - 2)}" '
                f'x2="{_coord(tick_x)}" y2="{_coord(y + bar_h + 2)}" '
                f'stroke="{BAR_BASELINE}" stroke-width="2" />'
            )
        label_text = fmt(value) + (f" {unit}" if unit else "")
        parts.append(
            f'<text x="{_coord(left + bar_w + 6)}" '
            f'y="{_coord(y + bar_h * 0.72)}" font-size="12" '
            f'fill="{TEXT_COLOR}">{_esc(label_text)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def sparkline(
    values: Sequence[float], width: int = 160, height: int = 36
) -> str:
    """A compact polyline of ``values`` with the last point dotted.

    Flat series (all values equal, or a single point) render as a
    horizontal midline; the vertical span always includes zero padding
    so small jitter is not over-amplified.
    """
    pad = 4
    points = [float(v) for v in values]
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img">'
    ]
    if points:
        low, high = min(points), max(points)
        span = high - low
        inner_w = width - 2 * pad
        inner_h = height - 2 * pad
        step = inner_w / max(len(points) - 1, 1)
        coords = []
        for index, value in enumerate(points):
            x = pad + index * step
            if span <= 0:
                y = height / 2
            else:
                y = pad + (high - value) / span * inner_h
            coords.append((x, y))
        path = " ".join(f"{_coord(x)},{_coord(y)}" for x, y in coords)
        parts.append(
            f'<polyline points="{path}" fill="none" '
            f'stroke="{SPARK_STROKE}" stroke-width="1.5" />'
        )
        last_x, last_y = coords[-1]
        parts.append(
            f'<circle cx="{_coord(last_x)}" cy="{_coord(last_y)}" r="2.5" '
            f'fill="{SPARK_DOT}" />'
        )
    parts.append("</svg>")
    return "".join(parts)
