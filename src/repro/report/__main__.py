"""``python -m repro.report`` — alias for the ``repro-report`` script."""

import sys

from repro.report.cli import main

if __name__ == "__main__":
    sys.exit(main())
