"""Minimal HTML assembly for reports: escaping, tables, page skeleton.

Not a template engine — reports are built from three shapes (headings,
tables, inline SVG), and f-strings over escaped cell values keep the
output byte-stable and the dependency count at zero.
"""

from __future__ import annotations

import html as _html
from typing import Any, Optional, Sequence

#: One stylesheet for every page, inlined so a report directory (or a
#: single served page) is self-contained.
STYLE = """
body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; padding: 0 1rem;
       color: #333333; }
h1, h2 { font-weight: 600; }
h1 { border-bottom: 2px solid #2f6f9f; padding-bottom: 0.3rem; }
table { border-collapse: collapse; margin: 0.75rem 0; font-size: 0.9rem; }
th, td { border: 1px solid #d5dbe0; padding: 0.3rem 0.6rem;
         text-align: left; }
th { background: #eef3f7; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.delta-ok { color: #2e7d32; }
.delta-bad { color: #c62828; }
.muted { color: #777777; font-size: 0.85rem; }
a { color: #2f6f9f; }
code { background: #f4f6f8; padding: 0.1rem 0.25rem; }
""".strip()


def esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


def page(title: str, body: Sequence[str], generator: str = "repro-report") -> str:
    """A complete standalone HTML document around ``body`` fragments."""
    joined = "\n".join(body)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        f'<meta name="generator" content="{esc(generator)}">\n'
        f"<title>{esc(title)}</title>\n"
        f"<style>\n{STYLE}\n</style>\n"
        f"</head>\n<body>\n{joined}\n</body>\n</html>\n"
    )


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    numeric: Optional[Sequence[int]] = None,
) -> str:
    """An HTML table; ``numeric`` column indices get right alignment.

    Cell values beginning with ``<svg`` or ``<a ``/``<span`` are taken
    as pre-rendered markup (charts, links, styled deltas); everything
    else is escaped.
    """
    numeric_cols = set(numeric or ())
    parts = ["<table>", "<tr>"]
    parts.extend(f"<th>{esc(header)}</th>" for header in headers)
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        for col, cell in enumerate(row):
            text = str(cell)
            if not text.startswith(("<svg", "<a ", "<span", "<code")):
                text = esc(cell)
            cls = ' class="num"' if col in numeric_cols else ""
            parts.append(f"<td{cls}>{text}</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)
