"""Compose catalog state into HTML report pages.

Pure functions of ``(catalog, bench history)``: no clocks, no
randomness, sorted iteration everywhere — the same store must render
byte-identical pages (CI diffs a second render against the first).
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

from repro.experiments.headline import KVTRACE_VERDICT_METRICS, PAPER_BASELINES
from repro.report import svg
from repro.report.bench import BenchHistory
from repro.report.html import esc, page, table
from repro.report.svg import fmt
from repro.service.catalog import Catalog

#: Runs shown in a per-experiment history table (the trajectory charts
#: still cover every run).
MAX_RUN_ROWS = 50


def _iso(unix: float) -> str:
    stamp = datetime.fromtimestamp(float(unix), tz=timezone.utc)
    return stamp.strftime("%Y-%m-%d %H:%M:%SZ")


def _short(sha: Optional[str]) -> str:
    return sha[:10] if sha else "-"


def _headline_summary(headline: Dict[str, float], limit: int = 3) -> str:
    parts = [f"{name}={fmt(value)}" for name, value in sorted(headline.items())]
    if len(parts) > limit:
        parts = parts[:limit] + ["…"]
    return ", ".join(parts) if parts else "-"


def _delta_cell(repro_value: float, paper_value: float) -> str:
    if paper_value == 0:
        return f'<span class="muted">{fmt(repro_value - paper_value)}</span>'
    delta = (repro_value - paper_value) / abs(paper_value) * 100.0
    cls = "delta-ok" if abs(delta) <= 15.0 else "delta-bad"
    sign = "+" if delta >= 0 else ""
    return f'<span class="{cls}">{sign}{fmt(delta, 3)}%</span>'


def _paper_delta_section(experiment: str, latest: Dict[str, float]) -> List[str]:
    baselines = PAPER_BASELINES.get(experiment)
    if not baselines:
        return []
    rows = []
    for metric in sorted(baselines):
        paper_value = baselines[metric]
        repro_value = latest.get(metric)
        rows.append(
            [
                metric,
                fmt(paper_value),
                fmt(repro_value) if repro_value is not None else "-",
                _delta_cell(repro_value, paper_value)
                if repro_value is not None
                else '<span class="muted">not in latest run</span>',
            ]
        )
    return [
        "<h2>Paper vs repro</h2>",
        table(["metric", "paper", "repro (latest)", "delta"], rows, numeric=(1, 2, 3)),
    ]


def _kvtrace_verdicts(headline: Dict[str, float]) -> Dict[str, Dict[str, float]]:
    """Regroup flat ``{trace}_{metric}`` headline keys per trace.

    The catalog stores only headline metrics, so the verdict table is a
    pure function of the latest run's headline row — which keeps the
    page byte-stable and renderable from any stored run.
    """
    verdicts: Dict[str, Dict[str, float]] = {}
    for metric in KVTRACE_VERDICT_METRICS:
        suffix = f"_{metric}"
        for name, value in headline.items():
            if name.endswith(suffix) and len(name) > len(suffix):
                verdicts.setdefault(name[: -len(suffix)], {})[metric] = value
    return verdicts


def _kvtrace_verdict_section(headline: Dict[str, float]) -> List[str]:
    """Per-trace hardware-vs-software verdict for the kvtrace page."""
    verdicts = _kvtrace_verdicts(headline)
    rows = []
    for trace in sorted(verdicts):
        v = verdicts[trace]
        if "hw_gbps" not in v or "sw_gbps" not in v:
            continue
        holds = v.get("case_holds", 0.0) >= 1.0
        ratio = v["sw_gbps"] / v["hw_gbps"] if v["hw_gbps"] else float("inf")
        cls = "delta-ok" if holds else "delta-bad"
        label = "case holds (software wins)" if holds else "case inverts (hardware wins)"
        rows.append(
            [
                esc(trace),
                fmt(v["hw_gbps"]),
                fmt(v["sw_gbps"]),
                fmt(ratio),
                fmt(v["hw_nvram_writes"]) if "hw_nvram_writes" in v else "-",
                fmt(v["sw_nvram_writes"]) if "sw_nvram_writes" in v else "-",
                f'<span class="{cls}">{label}</span>',
            ]
        )
    if not rows:
        return []
    return [
        "<h2>Hardware vs software, per trace</h2>",
        '<p class="muted">The paper\'s case against hardware-managed DRAM '
        "caches, re-tried on storage traces: hardware is the direct-mapped "
        "2LM design point, software is a profile-placed flat (1LM) layout "
        "on the same scaled platform. NVRAM writes count 64 B lines.</p>",
        table(
            [
                "trace",
                "hardware GB/s",
                "software GB/s",
                "sw/hw",
                "hw NVRAM writes",
                "sw NVRAM writes",
                "verdict",
            ],
            rows,
            numeric=(1, 2, 3, 4, 5),
        ),
    ]


def _trajectory_section(catalog: Catalog, experiment: str) -> List[str]:
    metrics = catalog.metrics_for(experiment)
    if not metrics:
        return []
    rows = []
    for metric in metrics:
        points = catalog.trajectory(experiment, metric)
        values = [point["value"] for point in points]
        if not values:
            continue
        spread = max(values) - min(values)
        rows.append(
            [
                metric,
                svg.sparkline(values),
                fmt(values[-1]),
                fmt(spread),
                str(len(values)),
            ]
        )
    if not rows:
        return []
    return [
        "<h2>Trajectory across stored runs</h2>",
        '<p class="muted">One point per stored run, oldest to newest; '
        "runs span code versions (salts) and commits.</p>",
        table(
            ["metric", "trajectory", "latest", "spread", "runs"],
            rows,
            numeric=(2, 3, 4),
        ),
    ]


def _runs_section(runs: List[Dict[str, Any]]) -> List[str]:
    rows = []
    for run in runs[:MAX_RUN_ROWS]:
        params = run["params"]
        rows.append(
            [
                _iso(run["created_unix"]),
                f"<code>{esc(_short(run['git_sha']))}</code>",
                f"<code>{esc(run['salt'] or '-')}</code>",
                "yes" if run["quick"] else "no",
                f"<code>{esc(run['params_hash'])}</code>"
                if params
                else '<span class="muted">default</span>',
                _headline_summary(run["headline"], limit=4),
            ]
        )
    body = [
        "<h2>Stored runs</h2>",
        table(
            ["created (UTC)", "commit", "code version", "quick", "params", "headline"],
            rows,
        ),
    ]
    if len(runs) > MAX_RUN_ROWS:
        body.append(
            f'<p class="muted">showing {MAX_RUN_ROWS} of {len(runs)} runs</p>'
        )
    return body


def _param_diff_section(catalog: Catalog, experiment: str) -> List[str]:
    diff = catalog.param_diff(experiment)
    if not diff:
        return []
    rows = [
        [name, ", ".join("∅" if v is None else str(v) for v in values)]
        for name, values in sorted(diff.items())
    ]
    return [
        "<h2>Explored parameters</h2>",
        '<p class="muted">Parameters taking more than one value across '
        "stored runs (∅ = parameter absent).</p>",
        table(["parameter", "observed values"], rows),
    ]


def _bench_section(history: Optional[BenchHistory], series: str) -> List[str]:
    if history is None or len(history) < 1:
        return []
    values = history.series(series)
    if len(values) < 2:
        return []
    return [
        "<h2>Perf trajectory (BENCH files)</h2>",
        table(
            ["series", "seconds over snapshots", "latest", "best"],
            [[series, svg.sparkline(values), fmt(values[-1]), fmt(min(values))]],
            numeric=(2, 3),
        ),
    ]


def _bench_series_section(
    history: Optional[BenchHistory], experiment_names: set
) -> List[str]:
    """Index-level sparklines for non-experiment bench series.

    Experiment wall-clock series render inline in the summaries table;
    everything else in the bench snapshots (the cache-engine
    microbenchmark's per-model timings and speedups) lands here, one
    sparkline per series once two snapshots exist.
    """
    if history is None or len(history) < 2:
        return []
    rows = []
    for name in history.names():
        values = history.series(name)
        if len(values) < 2 or name in experiment_names:
            continue
        rows.append(
            [esc(name), svg.sparkline(values), fmt(values[-1]), fmt(min(values))]
        )
    if not rows:
        return []
    return [
        "<h2>Perf trajectory (BENCH files)</h2>",
        '<p class="muted">Benchmark series across snapshots (cache-engine '
        "timings, speedups); experiment wall-clocks sparkline in the table "
        "above.</p>",
        table(["series", "values over snapshots", "latest", "best"], rows,
              numeric=(2, 3)),
    ]


def render_experiment(
    catalog: Catalog,
    experiment: str,
    bench: Optional[BenchHistory] = None,
) -> Optional[str]:
    """The full HTML page for one experiment, ``None`` if it has no runs."""
    runs = catalog.rows(experiment=experiment)
    if not runs:
        return None
    latest = runs[0]
    body: List[str] = [
        f"<h1>{esc(experiment)}</h1>",
        f'<p class="muted"><a href="index.html">← all experiments</a> · '
        f"{len(runs)} stored run{'s' if len(runs) != 1 else ''} · "
        f"latest {_iso(latest['created_unix'])} on "
        f"<code>{esc(_short(latest['git_sha']))}</code></p>",
    ]
    headline = latest["headline"]
    if headline:
        baselines = PAPER_BASELINES.get(experiment, {})
        items = sorted(headline.items())
        body.append("<h2>Latest headline metrics</h2>")
        body.append(
            svg.bar_chart(
                items,
                title=f"{experiment}: latest stored run",
                baselines=[baselines.get(name) for name, _ in items],
            )
        )
        if baselines:
            body.append(
                '<p class="muted">Grey ticks mark the paper\'s published '
                "value where one exists.</p>"
            )
    if experiment == "kvtrace":
        body.extend(_kvtrace_verdict_section(headline))
    body.extend(_paper_delta_section(experiment, headline))
    body.extend(_trajectory_section(catalog, experiment))
    body.extend(_param_diff_section(catalog, experiment))
    body.extend(_bench_section(bench, experiment))
    body.extend(_runs_section(runs))
    return page(f"{experiment} — repro report", body)


def render_index(
    catalog: Catalog, bench: Optional[BenchHistory] = None
) -> str:
    """The report index: one row per experiment present in the store."""
    summaries = catalog.experiments()
    body: List[str] = [
        "<h1>Experiment reports</h1>",
        f'<p class="muted">{len(summaries)} experiments · '
        f"{len(catalog)} stored runs · rendered from the result store "
        "(content-addressed, code-version salted).</p>",
    ]
    if summaries:
        rows = []
        for summary in summaries:
            name = summary["experiment"]
            latest = catalog.rows(experiment=name, limit=1)
            headline = latest[0]["headline"] if latest else {}
            bench_values = bench.series(name) if bench is not None else []
            rows.append(
                [
                    f'<a href="{esc(name)}.html">{esc(name)}</a>',
                    str(summary["runs"]),
                    str(summary["code_versions"]),
                    _iso(summary["last_unix"]),
                    _headline_summary(headline),
                    svg.sparkline(bench_values) if len(bench_values) >= 2 else "",
                ]
            )
        body.append(
            table(
                [
                    "experiment",
                    "runs",
                    "code versions",
                    "latest (UTC)",
                    "latest headline",
                    "bench trajectory",
                ],
                rows,
                numeric=(1, 2),
            )
        )
    else:
        body.append("<p>The store is empty — run some experiments first.</p>")
    body.extend(_bench_series_section(bench, {s["experiment"] for s in summaries}))
    if bench is not None and len(bench):
        body.append(
            f'<p class="muted">Bench history: {len(bench)} snapshot'
            f"{'s' if len(bench) != 1 else ''} "
            f"({', '.join(esc(p.label) for p in bench.points)}).</p>"
        )
    return page("repro report index", body)
