"""Loader for ``BENCH_*.json`` perf-trajectory files.

The CLI's ``--bench`` flag and the cache-engine benchmark each write a
JSON snapshot per run (``BENCH_experiments.json``,
``BENCH_cache.json``).  A directory of those snapshots — one per
commit, as CI artifacts accumulate — *is* the perf trajectory; this
module flattens each file into ``{series: value}`` and orders the
files, so reports can draw one sparkline per series.

Two schemas are understood:

* the CLI's ``{"experiments": {name: seconds}, "meta": {...}}`` —
  series are experiment names, ordering uses ``meta.unix_time``;
* any other JSON object — numeric leaves up to two levels deep become
  series named ``a`` or ``a/b`` (covers ``BENCH_cache.json``-style
  nested timings).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class BenchPoint:
    """One bench file: a labelled set of series values."""

    label: str
    unix_time: float
    values: Dict[str, float] = field(default_factory=dict)


@dataclass
class BenchHistory:
    """An ordered sequence of bench snapshots (oldest first)."""

    points: List[BenchPoint] = field(default_factory=list)

    def series(self, name: str) -> List[float]:
        """The values of one series across points, skipping absences."""
        return [
            point.values[name] for point in self.points if name in point.values
        ]

    def names(self) -> List[str]:
        seen = set()
        for point in self.points:
            seen.update(point.values)
        return sorted(seen)

    def __len__(self) -> int:
        return len(self.points)


def _flatten(payload: Any) -> Dict[str, float]:
    out: Dict[str, float] = {}
    if not isinstance(payload, dict):
        return out
    for name, value in sorted(payload.items()):
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[str(name)] = float(value)
        elif isinstance(value, dict):
            for sub, subvalue in sorted(value.items()):
                if isinstance(subvalue, bool):
                    continue
                if isinstance(subvalue, (int, float)):
                    out[f"{name}/{sub}"] = float(subvalue)
    return out


def load_bench_file(path: "str | Path") -> Optional[BenchPoint]:
    """Parse one bench snapshot; ``None`` if unreadable or empty."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    meta = payload.get("meta") if isinstance(payload.get("meta"), dict) else {}
    experiments = payload.get("experiments")
    if isinstance(experiments, dict):
        values = _flatten(experiments)
    else:
        values = _flatten({k: v for k, v in payload.items() if k != "meta"})
    if not values:
        return None
    unix_time = meta.get("unix_time")
    label = meta.get("git_sha") or path.stem
    return BenchPoint(
        label=str(label)[:10],
        unix_time=float(unix_time) if isinstance(unix_time, (int, float)) else 0.0,
        values=values,
    )


def load_bench_history(paths: Sequence["str | Path"]) -> BenchHistory:
    """Load + order bench snapshots (by recorded time, then filename)."""
    loaded = []
    for path in paths:
        point = load_bench_file(path)
        if point is not None:
            loaded.append((point, Path(path).name))
    loaded.sort(key=lambda pair: (pair[0].unix_time, pair[1]))
    return BenchHistory(points=[point for point, _ in loaded])
