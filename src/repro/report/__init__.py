"""Generated experiment reports: HTML pages with stdlib-built SVG.

The catalog (:mod:`repro.service.catalog`) makes experiment history
*queryable*; this package makes it *visible* without adding a plotting
dependency.  Every chart is a small hand-assembled SVG string —
bandwidth bars, paper-vs-repro delta tables, perf-trajectory
sparklines — inlined into per-experiment HTML pages plus an index.

Rendering is a pure function of the store contents: the same store
renders byte-identical pages, so reports can be diffed across commits
and CI can gate on a second render producing the same bytes.

Consumed two ways::

    repro-report --store ./results --out ./report     # static bundle
    GET /reports/<experiment>                          # live dashboard

Modules:

* :mod:`repro.report.svg` — deterministic SVG primitives (bar charts,
  sparklines) with pinned float formatting.
* :mod:`repro.report.html` — HTML assembly helpers (escaping, tables,
  the page skeleton with inline CSS).
* :mod:`repro.report.bench` — loader for ``BENCH_*.json``
  perf-trajectory files.
* :mod:`repro.report.render` — catalog -> HTML page composition.
* :mod:`repro.report.cli` — the ``repro-report`` entry point.
"""

from repro.report.render import render_experiment, render_index

__all__ = ["render_experiment", "render_index"]
