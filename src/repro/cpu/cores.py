"""Retired-instruction accounting for the MIPS traces (Figure 5a).

The paper plots system-wide retired instructions per second alongside
memory traffic to show compute throughput collapsing with the DRAM-cache
hit rate.  We charge a configurable number of instructions per byte of
demand traffic for memory-bound phases, and compute-bound kernels charge
their own instruction counts directly.
"""

from __future__ import annotations

from repro.config import CPUConfig


def retired_instructions(demand_bytes: int, cpu: CPUConfig) -> int:
    """Instructions retired while moving ``demand_bytes`` of demand data."""
    if demand_bytes < 0:
        raise ValueError("demand_bytes must be non-negative")
    return int(demand_bytes * cpu.instructions_per_byte)
