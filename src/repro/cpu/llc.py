"""Last-level cache model.

For the buffer sizes the paper studies (tens to hundreds of GB against a
33 MB LLC), every fresh load misses the LLC, so the interesting LLC
behaviour reduces to two effects the IMC can observe:

* a *standard* store to a line not present in the LLC triggers a
  Read-For-Ownership — an extra LLC read;
* dirtied lines are written back *later*, once roughly an LLC's worth of
  newer data has streamed through — the temporal gap that makes the
  Dirty Data Optimization observable (Section IV-C).

:class:`WritebackQueue` models that delayed eviction: writes are queued
and released in FIFO order once the backlog exceeds the LLC capacity.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List

import numpy as np

from repro.config import CPUConfig
from repro.units import CACHE_LINE


class LLCModel:
    """Capacity-only LLC model."""

    def __init__(self, config: CPUConfig, line_size: int = CACHE_LINE) -> None:
        self.config = config
        self.line_size = line_size

    @property
    def capacity_lines(self) -> int:
        return self.config.llc_capacity // self.line_size

    def fits(self, nbytes: int) -> bool:
        """Would a working set of ``nbytes`` stay resident in the LLC?"""
        return nbytes <= self.config.llc_capacity


class WritebackQueue:
    """FIFO of dirtied lines awaiting eviction from the LLC.

    ``push`` enqueues a batch of freshly dirtied lines and yields any
    batches that the incoming data displaces; ``drain`` flushes the rest
    (e.g. at the end of a benchmark, or on an explicit flush).
    """

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_lines = capacity_lines
        self._pending: deque[np.ndarray] = deque()
        self._pending_lines = 0

    def __len__(self) -> int:
        return self._pending_lines

    def push(self, lines: np.ndarray) -> List[np.ndarray]:
        """Enqueue dirtied lines; return batches evicted by the pressure."""
        self._pending.append(lines)
        self._pending_lines += int(lines.size)
        evicted: List[np.ndarray] = []
        while self._pending_lines > self.capacity_lines and self._pending:
            batch = self._pending.popleft()
            self._pending_lines -= int(batch.size)
            evicted.append(batch)
        return evicted

    def drain(self) -> Iterator[np.ndarray]:
        """Flush all pending write-backs in FIFO order."""
        while self._pending:
            batch = self._pending.popleft()
            self._pending_lines -= int(batch.size)
            yield batch
