"""CPU-side models: last-level cache behaviour and instruction accounting.

The simulator models the CPU only where it shapes IMC-visible traffic:
which program operations become LLC reads (loads, RFOs) versus LLC
writes (dirty evictions, nontemporal stores), and how long dirtied lines
linger in the LLC before being written back — the delay behind the
Dirty Data Optimization (Section IV-C).
"""

from repro.cpu.llc import LLCModel, WritebackQueue
from repro.cpu.cores import retired_instructions

__all__ = ["LLCModel", "WritebackQueue", "retired_instructions"]
