"""Platform configuration: the paper's test system (Figure 1) as data.

The paper's machine is a two-socket Cascade Lake server.  Each socket has
24 cores, two integrated memory controllers with three channels each, and
every channel is populated with one 32 GiB DDR4 DIMM and one 512 GiB
Optane DC DIMM.  In 2LM mode the DRAM on a socket (192 GiB) acts as a
direct-mapped cache for the socket's NVRAM (3 TiB).

Because a line-accurate simulation of terabyte address spaces is
impractical, every configuration can be *scaled*: :meth:`PlatformConfig.scaled`
divides all capacities **and** all bandwidths by the same factor, which
leaves every ratio the paper's conclusions rest on (access amplification,
bandwidth asymmetry, working-set-to-cache-size) unchanged and — usefully —
keeps simulated wall-clock times directly comparable to the paper's.

Bandwidth calibration sources:

* NVRAM read: 5.3 GB/s per 512 GiB DIMM (Intel product brief, cited in
  Section III-C), 6 interleaved DIMMs saturate at ~30 GB/s with 8 threads.
* NVRAM write: ~11 GB/s for 6 DIMMs, peaking at 4 threads (Figure 2b).
* Optane media granularity is 256 B; random 64 B writes suffer ~4x write
  amplification (Yang et al., FAST'20; Section III-C).
* DRAM: DDR4-2666, 21.3 GB/s per-channel bus, ~80 % sustained.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import CACHE_LINE, GiB, KiB, MiB, NVRAM_MEDIA_GRANULARITY


@dataclass(frozen=True)
class DRAMConfig:
    """One DDR4 DRAM DIMM and the channel bus it sits on."""

    capacity: int = 32 * GiB
    #: Raw DDR4-2666 channel bus bandwidth, bytes/s.
    channel_bus_bandwidth: float = 21.3e9
    #: Fraction of the bus achievable for well-formed streams.
    sustained_fraction: float = 0.88
    #: Extra derating for random 64 B access (bank conflicts, row misses).
    random_penalty: float = 0.85

    @property
    def sustained_bandwidth(self) -> float:
        """Achievable bytes/s for sequential streams on one channel."""
        return self.channel_bus_bandwidth * self.sustained_fraction


@dataclass(frozen=True)
class NVRAMConfig:
    """One Optane DC DIMM (phase-change media behind a DDR-T interface)."""

    capacity: int = 512 * GiB
    #: Sequential read bandwidth of one DIMM, bytes/s (512 GiB part).
    read_bandwidth: float = 5.3e9
    #: Sequential write bandwidth of one DIMM using nontemporal stores.
    write_bandwidth: float = 1.9e9
    #: Media access granularity; smaller writes are amplified.
    media_granularity: int = NVRAM_MEDIA_GRANULARITY
    #: Threads at which aggregate write bandwidth peaks (Figure 2b).
    write_saturation_threads: int = 4
    #: Per-extra-thread degradation beyond the write peak.
    write_oversubscription_penalty: float = 0.01
    #: Floor on the oversubscription derating.
    write_oversubscription_floor: float = 0.85
    #: Interference between concurrent reads and writes on one DIMM:
    #: 0.0 = fully overlapped (independent queues), 1.0 = serialized.
    mixed_interference: float = 0.25
    #: Concurrent sequential streams the on-DIMM write-combining buffer
    #: (XPBuffer) can merge; beyond this, 64 B writes stop coalescing
    #: into 256 B media writes (Yang et al., FAST'20).
    stream_capacity: int = 4
    #: Fraction of write bandwidth retained once streams exceed the
    #: buffer capacity (partial merging).
    multistream_write_factor: float = 0.5


@dataclass(frozen=True)
class CPUConfig:
    """Cores, last-level cache, and per-thread demand limits of one socket."""

    cores: int = 24
    llc_capacity: int = 33 * MiB
    #: Peak demand-read bytes/s a single thread can issue to the IMCs.
    per_thread_read_bandwidth: float = 5.0e9
    #: Peak write bytes/s a single thread can issue (nontemporal stores).
    per_thread_write_bandwidth: float = 4.0e9
    #: Retired instructions per byte of demand traffic for a pure
    #: load/store loop; used only for the MIPS traces (Figure 5a).
    instructions_per_byte: float = 0.25
    #: Peak aggregate fp32 throughput of the socket: 24 cores x ~2.5 GHz
    #: x 64 flops/cycle (dual AVX-512 FMA).
    peak_flops: float = 3.8e12
    #: Retired instructions per floating-point operation (SIMD packing);
    #: calibrated so compute-bound phases show ~4e4 MIPS (Figure 5a).
    instructions_per_flop: float = 0.018


@dataclass(frozen=True)
class SocketConfig:
    """One CPU socket: 6 channels, each with a DRAM and an NVRAM DIMM."""

    channels: int = 6
    dram: DRAMConfig = DRAMConfig()
    nvram: NVRAMConfig = NVRAMConfig()
    cpu: CPUConfig = CPUConfig()

    @property
    def dram_capacity(self) -> int:
        return self.channels * self.dram.capacity

    @property
    def nvram_capacity(self) -> int:
        return self.channels * self.nvram.capacity

    @property
    def nvram_read_bandwidth(self) -> float:
        """Aggregate sequential NVRAM read bandwidth, bytes/s."""
        return self.channels * self.nvram.read_bandwidth

    @property
    def nvram_write_bandwidth(self) -> float:
        """Aggregate sequential NVRAM write bandwidth, bytes/s."""
        return self.channels * self.nvram.write_bandwidth

    @property
    def dram_bandwidth(self) -> float:
        """Aggregate sustained DRAM bandwidth, bytes/s."""
        return self.channels * self.dram.sustained_bandwidth


@dataclass(frozen=True)
class PlatformConfig:
    """The full test platform (Figure 1)."""

    sockets: int = 2
    socket: SocketConfig = SocketConfig()
    line_size: int = CACHE_LINE
    #: Factor by which capacities and bandwidths were divided; purely
    #: informational, recorded by :meth:`scaled`.
    scale_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ConfigurationError("platform needs at least one socket")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ConfigurationError("line size must be a positive power of two")
        if self.socket.dram.capacity % self.line_size:
            raise ConfigurationError("DRAM capacity must be a multiple of the line size")
        if self.socket.nvram.capacity % self.line_size:
            raise ConfigurationError("NVRAM capacity must be a multiple of the line size")

    def scaled(self, factor: float) -> "PlatformConfig":
        """Return a copy with capacities and bandwidths divided by ``factor``.

        Capacities are rounded down to whole lines.  The cache-line size
        itself is never scaled, so cache-policy behaviour (Table I access
        counts, Figure 3 state machine) is identical at any scale.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")

        def cap(nbytes: int) -> int:
            scaled_bytes = int(nbytes / factor)
            scaled_bytes -= scaled_bytes % self.line_size
            if scaled_bytes < self.line_size:
                raise ConfigurationError(
                    f"scaling by {factor} shrinks a {nbytes}-byte device below one line"
                )
            return scaled_bytes

        dram = replace(
            self.socket.dram,
            capacity=cap(self.socket.dram.capacity),
            channel_bus_bandwidth=self.socket.dram.channel_bus_bandwidth / factor,
        )
        nvram = replace(
            self.socket.nvram,
            capacity=cap(self.socket.nvram.capacity),
            read_bandwidth=self.socket.nvram.read_bandwidth / factor,
            write_bandwidth=self.socket.nvram.write_bandwidth / factor,
        )
        cpu = replace(
            self.socket.cpu,
            llc_capacity=max(64 * KiB, cap(self.socket.cpu.llc_capacity)),
            per_thread_read_bandwidth=self.socket.cpu.per_thread_read_bandwidth / factor,
            per_thread_write_bandwidth=self.socket.cpu.per_thread_write_bandwidth / factor,
            peak_flops=self.socket.cpu.peak_flops / factor,
        )
        socket = replace(self.socket, dram=dram, nvram=nvram, cpu=cpu)
        return replace(self, socket=socket, scale_factor=self.scale_factor * factor)


#: Lines per backend call for the workload executors that stream request
#: batches (nn, graphs, autotm, recsys, kernels).  A pure implementation
#: granularity: it bounds numpy temporaries and sets how finely the
#: kernel runner's LLC write-back queue interleaves with demand reads.
#: Re-tuned from ``1 << 16`` after the segmented cache engine made
#: high-collision batches O(n log n): larger batches now amortize more
#: per-call overhead with no collision-regime penalty, and at the
#: default 1/1024 scale the scaled LLC is far smaller than either value,
#: so write-back resolution is unchanged.
BATCH_LINES = 1 << 18

#: The canonical paper platform at full (hardware) scale.
PAPER_PLATFORM = PlatformConfig()

#: Default scale used by the experiment harness: 1/1024 of the hardware.
DEFAULT_SCALE = 1024.0


def default_platform(scale: float = DEFAULT_SCALE) -> PlatformConfig:
    """The paper platform scaled for simulation (192 MiB DRAM cache/socket)."""
    return PAPER_PLATFORM.scaled(scale)
