"""Queryable catalog over the content-addressed result store.

The :class:`~repro.service.store.ResultStore` answers exactly one
question fast: "has *this* request been computed?".  Design-space work
asks different questions — "how did fig4's paper delta move across the
last five commits?", "which parameter settings of the designspace sweep
have we already explored?" — and answering them from a flat
``index.jsonl`` means re-reading every payload every time.

The catalog is a sqlite3 index (stdlib, zero new dependencies) kept
*next to* the store (``<root>/catalog.sqlite3``) and rebuilt
incrementally from :meth:`ResultStore.entries`: one row per stored key
carrying ``(experiment, params hash + JSON, git SHA, code-version
salt, quick, timestamp, headline metrics)``.  Headline metrics are
extracted once, at refresh time, through the per-experiment hooks in
:mod:`repro.experiments.headline` — queries never open payload files.

The sqlite file is a disposable cache of the store: deleting it (or
bumping :data:`SCHEMA_VERSION`) just triggers a rebuild.  Connections
are per-thread, so the threaded HTTP front end can refresh and query
concurrently.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import obs
from repro.experiments.headline import headline_metrics
from repro.service.store import ResultStore, canonical_json

#: Bump to invalidate existing catalog files (schema or extraction
#: changes); a mismatched catalog is dropped and rebuilt, never read.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS catalog_meta (
    field TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    experiment TEXT NOT NULL,
    params_hash TEXT NOT NULL,
    params_json TEXT NOT NULL,
    quick INTEGER NOT NULL,
    git_sha TEXT,
    salt TEXT NOT NULL,
    created_unix REAL NOT NULL,
    headline_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_experiment
    ON results (experiment, created_unix);
"""


def params_hash(params: Dict[str, Any]) -> str:
    """A short stable digest of one parameter assignment."""
    return hashlib.sha256(canonical_json(params).encode()).hexdigest()[:12]


class Catalog:
    """Sqlite-backed, incrementally refreshed index of a result store."""

    def __init__(self, store: ResultStore, path: "str | Path | None" = None) -> None:
        self.store = store
        self.path = Path(path) if path is not None else store.root / "catalog.sqlite3"
        self._local = threading.local()
        self._log = obs.get_logger("service.catalog")
        self._ensure_schema()

    # -- connection management ---------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn: Optional[sqlite3.Connection] = getattr(self._local, "conn", None)
        if conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path)
            conn.row_factory = sqlite3.Row
            self._local.conn = conn
        return conn

    def close(self) -> None:
        conn: Optional[sqlite3.Connection] = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _ensure_schema(self) -> None:
        conn = self._connect()
        with conn:
            conn.executescript(_SCHEMA)
            row = conn.execute(
                "SELECT value FROM catalog_meta WHERE field = 'schema_version'"
            ).fetchone()
            if row is not None and int(row["value"]) != SCHEMA_VERSION:
                self._log.info(
                    "catalog schema %s != %d; dropping for rebuild",
                    row["value"], SCHEMA_VERSION,
                )
                conn.execute("DELETE FROM results")
                conn.execute("DELETE FROM catalog_meta")
                row = None
            if row is None:
                conn.execute(
                    "INSERT OR REPLACE INTO catalog_meta (field, value) "
                    "VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )

    # -- building ----------------------------------------------------

    def refresh(self) -> int:
        """Fold new store entries in; returns rows added + removed.

        Incremental: only keys absent from the catalog get their payload
        opened for params/headline extraction, and rows whose key left
        the store (a compaction dropped it) are deleted.  Safe to call
        per HTTP request — a no-op refresh is two cheap set scans.
        """
        conn = self._connect()
        entries = {entry.key: entry for entry in self.store.entries()}
        known = {
            row["key"] for row in conn.execute("SELECT key FROM results").fetchall()
        }
        stale = known - entries.keys()
        fresh = [entries[key] for key in entries if key not in known]
        changed = 0
        with conn:
            if stale:
                conn.executemany(
                    "DELETE FROM results WHERE key = ?",
                    [(key,) for key in sorted(stale)],
                )
                changed += len(stale)
            for entry in fresh:
                stored = self.store.get(entry.key)
                if stored is None:  # racing a concurrent compaction
                    continue
                params = stored.request.get("params") or {}
                headline = headline_metrics(entry.experiment, stored.result.data)
                conn.execute(
                    "INSERT OR REPLACE INTO results (key, experiment, "
                    "params_hash, params_json, quick, git_sha, salt, "
                    "created_unix, headline_json) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        entry.key,
                        entry.experiment,
                        params_hash(params),
                        canonical_json(params),
                        int(entry.quick),
                        entry.git_sha,
                        entry.salt,
                        entry.created_unix,
                        canonical_json(headline),
                    ),
                )
                changed += 1
        if changed:
            self._log.info("catalog refresh: %d rows changed", changed)
        return changed

    def rebuild(self) -> int:
        """Drop every row and re-index the whole store (O(store))."""
        conn = self._connect()
        with conn:
            conn.execute("DELETE FROM results")
        return self.refresh()

    # -- queries -----------------------------------------------------

    @staticmethod
    def _row_to_dict(row: sqlite3.Row) -> Dict[str, Any]:
        return {
            "key": row["key"],
            "experiment": row["experiment"],
            "params_hash": row["params_hash"],
            "params": json.loads(row["params_json"]),
            "quick": bool(row["quick"]),
            "git_sha": row["git_sha"],
            "salt": row["salt"],
            "created_unix": row["created_unix"],
            "headline": json.loads(row["headline_json"]),
        }

    def experiments(self) -> List[Dict[str, Any]]:
        """Per-experiment summary: run counts and the freshest run."""
        conn = self._connect()
        rows = conn.execute(
            "SELECT experiment, COUNT(*) AS runs, "
            "COUNT(DISTINCT salt) AS code_versions, "
            "MIN(created_unix) AS first_unix, MAX(created_unix) AS last_unix "
            "FROM results GROUP BY experiment ORDER BY experiment"
        ).fetchall()
        return [dict(row) for row in rows]

    def rows(
        self, experiment: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Catalog rows, newest first (then by key for determinism)."""
        conn = self._connect()
        sql = "SELECT * FROM results"
        args: List[Any] = []
        if experiment is not None:
            sql += " WHERE experiment = ?"
            args.append(experiment)
        sql += " ORDER BY created_unix DESC, key"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(int(limit))
        return [self._row_to_dict(row) for row in conn.execute(sql, args).fetchall()]

    def trajectory(
        self, experiment: str, metric: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Headline metrics across code versions, oldest first.

        One point per stored run of ``experiment``, ordered by
        ``created_unix`` (ties broken by key), each labelled with the
        ``(git_sha, salt)`` that produced it — the "how did this number
        move across commits" query.  With ``metric`` set, the headline
        dict collapses to that single value (runs missing it are
        skipped).  Unknown experiments yield an empty list.
        """
        conn = self._connect()
        rows = conn.execute(
            "SELECT * FROM results WHERE experiment = ? "
            "ORDER BY created_unix, key",
            (experiment,),
        ).fetchall()
        points = []
        for row in rows:
            headline = json.loads(row["headline_json"])
            if metric is not None:
                if metric not in headline:
                    continue
                value: Any = headline[metric]
            else:
                value = headline
            points.append(
                {
                    "key": row["key"],
                    "created_unix": row["created_unix"],
                    "git_sha": row["git_sha"],
                    "salt": row["salt"],
                    "quick": bool(row["quick"]),
                    "params_hash": row["params_hash"],
                    "value": value,
                }
            )
        return points

    def param_diff(self, experiment: str) -> Dict[str, List[Any]]:
        """Which parameters vary across an experiment's stored runs.

        Maps each parameter name that takes more than one distinct value
        (absence counts as a value) to the sorted list of observed
        values — the "what have we already explored" query for sweeps.
        """
        conn = self._connect()
        rows = conn.execute(
            "SELECT params_json FROM results WHERE experiment = ?",
            (experiment,),
        ).fetchall()
        assignments = [json.loads(row["params_json"]) for row in rows]
        if not assignments:
            return {}
        names = sorted({name for params in assignments for name in params})
        diff: Dict[str, List[Any]] = {}
        for name in names:
            seen = {canonical_json(params.get(name)) for params in assignments}
            if len(seen) > 1:
                diff[name] = sorted(
                    (json.loads(encoded) for encoded in seen),
                    key=lambda v: (str(type(v).__name__), str(v)),
                )
        return diff

    def metrics_for(self, experiment: str) -> List[str]:
        """Every headline metric name seen for ``experiment``, sorted."""
        conn = self._connect()
        rows = conn.execute(
            "SELECT headline_json FROM results WHERE experiment = ?",
            (experiment,),
        ).fetchall()
        names = set()
        for row in rows:
            names.update(json.loads(row["headline_json"]))
        return sorted(names)

    def __len__(self) -> int:
        row = self._connect().execute("SELECT COUNT(*) AS n FROM results").fetchone()
        return int(row["n"])
