"""Worker pool: claims jobs and executes them in forked child processes.

Each worker is a thread that claims from the queue and runs the job in
a **forked child process** (the same isolation the sweep engine uses):

* the per-job timeout is enforceable — an overrunning child is killed,
  not abandoned;
* a crashing simulation takes down only its child, and surfaces as a
  retryable :class:`~repro.errors.JobError`;
* the child runs under a fresh :func:`repro.obs.session`, so its spans
  and metrics ship home as a payload the parent merges through the
  existing ``SpanTracer.absorb`` / ``MetricsRegistry.merge_snapshot``
  machinery — one registry then serves ``GET /metrics`` for the whole
  service.

On platforms without ``fork`` the pool degrades gracefully: jobs run
inline in the worker thread (results identical), but hard timeouts
cannot be enforced and per-job simulation telemetry is not captured.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import JobError, JobTimeoutError
from repro.exec import fork_available, merge_worker_telemetry
from repro.exec.sweep import _WorkerTelemetry
from repro.experiments.base import ExperimentResult
from repro.service.queue import Job

if TYPE_CHECKING:  # import cycle: scheduler instantiates the pool
    from repro.service.scheduler import SimulationService

#: How often a waiting worker re-checks the stop flag and deadline.
_POLL_SECONDS = 0.1


def _child_main(conn, fn: Callable[..., ExperimentResult], kwargs: Dict[str, Any],
                capture_spans: bool) -> None:
    """Forked child entry: run the experiment, ship result + telemetry."""
    try:
        with obs.session() as tele:
            result = fn(**kwargs)
            payload = _WorkerTelemetry(
                records=list(tele.tracer.records) if capture_spans else [],
                origin_abs=tele.tracer.origin_abs,
                metrics=tele.metrics.snapshot(),
            )
        conn.send(("ok", result, payload))
    # Child barrier: every failure type must cross the pipe as data.
    except BaseException as error:  # repro-lint: disable=EXC001
        try:
            conn.send(("error", f"{type(error).__name__}: {error}", None))
        except Exception:  # repro-lint: disable=EXC001
            pass  # pipe gone: the parent will see EOF and report a crash
    finally:
        conn.close()


class WorkerPool:
    """N worker threads executing queue jobs for a service."""

    def __init__(self, service: "SimulationService", threads: int = 2) -> None:
        if threads < 1:
            raise ValueError(f"worker pool needs >= 1 thread, got {threads}")
        self.service = service
        self.threads = threads
        self._stop = threading.Event()
        self._merge_lock = threading.Lock()
        self._threads: List[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------

    def start(self) -> None:
        for index in range(self.threads):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            with self._merge_lock:
                self._threads.append(thread)

    def stop(self, timeout: Optional[float] = None) -> None:
        """Signal workers to exit and join them.

        Call after ``queue.close()``: workers drain pending jobs first
        (``claim`` keeps serving a closed queue until it is empty).
        """
        self._stop.set()
        # Snapshot under the lock, join outside it: joining while
        # holding _merge_lock would deadlock against a worker waiting
        # for it to merge telemetry.
        with self._merge_lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout)

    # -- the worker loop ---------------------------------------------

    def _worker_loop(self) -> None:
        queue = self.service.queue
        while True:
            job = queue.claim(timeout=_POLL_SECONDS)
            if job is not None:
                self._run_job(job)
                continue
            # None means either a poll timeout (keep spinning) or a
            # closed-and-empty queue (exit).
            if queue.closed and queue.depth == 0:
                return
            if self._stop.is_set() and queue.depth == 0:
                return

    def _run_job(self, job: Job) -> None:
        started = time.monotonic()
        try:
            result, payload = self._execute(job)
        except JobTimeoutError as error:
            self.service.job_failed(
                job, str(error), time.monotonic() - started, timed_out=True
            )
            return
        except JobError as error:
            self.service.job_failed(job, str(error), time.monotonic() - started)
            return
        # Worker barrier: an unexpected failure in the pool machinery
        # itself must mark the job failed, never kill the worker thread.
        except Exception as error:  # repro-lint: disable=EXC001
            self.service.job_failed(
                job,
                f"worker error: {type(error).__name__}: {error}",
                time.monotonic() - started,
            )
            return
        if payload is not None:
            # Tracer/registry mutation is not thread-safe; serialize
            # merges across the pool's worker threads.
            with self._merge_lock:
                merge_worker_telemetry(self.service.telemetry, payload)
        self.service.job_succeeded(job, result, time.monotonic() - started)

    # -- execution strategies ----------------------------------------

    def _execute(self, job: Job) -> Tuple[ExperimentResult, Optional[_WorkerTelemetry]]:
        fn = self.service.executable_for(job)
        kwargs = {"quick": job.request.spec.quick, **dict(job.request.spec.params)}
        if fork_available():
            return self._execute_forked(job, fn, kwargs)
        return fn(**kwargs), None

    def _execute_forked(
        self, job: Job, fn: Callable[..., ExperimentResult], kwargs: Dict[str, Any]
    ) -> Tuple[ExperimentResult, Optional[_WorkerTelemetry]]:
        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_child_main,
            args=(child_conn, fn, kwargs, self.service.capture_spans),
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = (
            None
            if job.request.timeout is None
            else time.monotonic() + job.request.timeout
        )
        try:
            while not parent_conn.poll(_POLL_SECONDS):
                if deadline is not None and time.monotonic() >= deadline:
                    process.terminate()
                    process.join(1.0)
                    raise JobTimeoutError(
                        f"job {job.id} exceeded its {job.request.timeout:.1f}s "
                        "timeout and was killed"
                    )
            try:
                status, value, payload = parent_conn.recv()
            except EOFError:
                raise JobError(
                    f"job {job.id} worker process died without a result "
                    f"(exit code {process.exitcode})"
                ) from None
        finally:
            parent_conn.close()
            process.join(1.0)
            if process.is_alive():
                process.kill()
                process.join(1.0)
        if status == "error":
            raise JobError(value)
        return value, payload
