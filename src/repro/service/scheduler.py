"""Retry policy and the :class:`SimulationService` facade.

The service ties the pieces together into one request lifecycle::

    submit -> store lookup -> (hit: serve cached)
                       \\-> (miss: queue -> worker -> store -> done)

Every stage is observable through the shared telemetry registry
(queue depth gauge, cache hit/miss counters, job latency histogram) —
the same registry ``GET /metrics`` renders, so the serving layer's
health is scraped exactly like the simulator's own counters.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional

from repro import obs
from repro.errors import InvariantError, JobRejectedError
from repro.experiments.base import ExperimentResult
from repro.service.catalog import Catalog
from repro.service.queue import Job, JobQueue, JobRequest
from repro.service.store import RequestSpec, ResultStore, StoredResult
from repro.service.versioning import code_version_salt, git_sha


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a cap.

    ``delay(attempt)`` is the wait before retry number ``attempt``
    (1-based count of *completed* attempts): base, base*factor,
    base*factor^2, ... bounded by ``backoff_max``.
    """

    max_retries: int = 2
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0

    def delay(self, attempt: int) -> float:
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )


@dataclass
class SubmitOutcome:
    """What a submission produced: a cached result or a queued job."""

    status: str  # "cached" | "accepted" | "duplicate"
    key: str
    job: Optional[Job] = None
    cached: Optional[StoredResult] = None

    def describe(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"status": self.status, "key": self.key}
        if self.job is not None:
            payload["job"] = self.job.describe()
        return payload


class SimulationService:
    """Long-running simulation-as-a-service: store + queue + workers.

    ``experiments`` maps experiment names to callables accepting
    ``quick`` (and optionally more keyword parameters); it defaults to
    the CLI registry, so everything ``repro-experiment list`` shows is
    schedulable.  The service owns a private telemetry handle — it
    never touches the process-global one, so an embedding application's
    own tracing is unaffected.
    """

    def __init__(
        self,
        store: ResultStore,
        queue: Optional[JobQueue] = None,
        *,
        experiments: Optional[Mapping[str, Callable[..., ExperimentResult]]] = None,
        workers: int = 2,
        retry: Optional[RetryPolicy] = None,
        capture_spans: bool = False,
        salt: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if experiments is None:
            from repro.experiments.registry import EXPERIMENTS

            experiments = EXPERIMENTS
        self.store = store
        self.queue = queue if queue is not None else JobQueue(clock=clock)
        self.experiments = dict(experiments)
        self.retry = retry if retry is not None else RetryPolicy()
        self.capture_spans = capture_spans
        self.salt = salt if salt is not None else code_version_salt()
        self.telemetry = obs.Telemetry()
        self._metrics_lock = threading.Lock()
        self._clock = clock
        self._log = obs.get_logger("service")
        self._catalog: Optional[Catalog] = None
        self._catalog_lock = threading.Lock()
        from repro.service.workers import WorkerPool

        self.workers = WorkerPool(self, threads=workers)
        self._started = False

    # -- metric handles ----------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        # HTTP threads and worker threads record concurrently; counter
        # increments are read-modify-write, so serialize them.
        with self._metrics_lock:
            self.telemetry.metrics.counter(f"repro_service_{name}_total").inc(amount)

    def _observe_latency(self, seconds: float) -> None:
        with self._metrics_lock:
            self.telemetry.metrics.histogram(
                "repro_service_job_seconds",
                obs.LATENCY_BUCKETS,
                help="wall-clock seconds per executed job",
            ).observe(seconds)

    def _update_depth(self) -> None:
        with self._metrics_lock:
            self.telemetry.metrics.gauge(
                "repro_service_queue_depth", help="jobs waiting to run"
            ).set(self.queue.depth)

    def _observe_render(self, seconds: float) -> None:
        with self._metrics_lock:
            self.telemetry.metrics.histogram(
                "repro_service_render_seconds",
                obs.LATENCY_BUCKETS,
                help="wall-clock seconds per catalog/report render",
            ).observe(seconds)

    # -- request validation ------------------------------------------

    def build_spec(
        self,
        experiment: str,
        params: Optional[Mapping[str, Any]] = None,
        quick: bool = False,
    ) -> RequestSpec:
        """Validate a request and bind it to this service's salt."""
        fn = self.experiments.get(experiment)
        if fn is None:
            raise JobRejectedError(
                f"unknown experiment {experiment!r}; "
                f"registered: {', '.join(sorted(self.experiments))}"
            )
        params = dict(params or {})
        signature = inspect.signature(fn)
        for name, value in params.items():
            if name not in signature.parameters:
                raise JobRejectedError(
                    f"experiment {experiment!r} takes no parameter {name!r}"
                )
            if not isinstance(value, (str, int, float, bool, type(None))):
                raise JobRejectedError(
                    f"parameter {name!r} must be plain data, got "
                    f"{type(value).__name__}"
                )
        return RequestSpec.build(experiment, params, quick=quick, salt=self.salt)

    # -- the request lifecycle ---------------------------------------

    def submit(
        self,
        experiment: str,
        params: Optional[Mapping[str, Any]] = None,
        quick: bool = False,
        priority: int = 0,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> SubmitOutcome:
        """Serve from the store, dedupe in-flight, or enqueue.

        Raises :class:`JobRejectedError` on a bad request and
        :class:`~repro.errors.QueueFullError` when backpressure rejects
        the submission.
        """
        self._count("requests")
        spec = self.build_spec(experiment, params, quick)
        cached = self.store.get(spec.key)
        if cached is not None:
            self._count("cache_hits")
            return SubmitOutcome(status="cached", key=spec.key, cached=cached)
        self._count("cache_misses")
        request = JobRequest(
            spec=spec, priority=priority, timeout=timeout, max_retries=max_retries
        )
        job, deduplicated = self.queue.submit(request)
        self._update_depth()
        if deduplicated:
            self._count("jobs_deduplicated")
            return SubmitOutcome(status="duplicate", key=spec.key, job=job)
        self._count("jobs_accepted")
        return SubmitOutcome(status="accepted", key=spec.key, job=job)

    # -- worker callbacks --------------------------------------------

    def executable_for(self, job: Job) -> Callable[..., ExperimentResult]:
        fn = self.experiments.get(job.request.spec.experiment)
        if fn is None:  # registry changed under a live queue
            raise InvariantError(
                f"job {job.id} names unregistered experiment "
                f"{job.request.spec.experiment!r}"
            )
        return fn

    def max_retries_for(self, job: Job) -> int:
        declared = job.request.max_retries
        return self.retry.max_retries if declared is None else declared

    def job_succeeded(
        self, job: Job, result: ExperimentResult, seconds: float
    ) -> None:
        key = self.store.put(
            job.request.spec,
            result,
            meta={
                "job_id": job.id,
                "attempts": job.attempts,
                "seconds": round(seconds, 4),
                "code_version": self.salt,
            },
        )
        self.queue.succeed(job, key)
        self._count("jobs_succeeded")
        self._observe_latency(seconds)
        self._update_depth()
        self._log.info("job %s succeeded in %.2fs -> %s", job.id, seconds, key[:12])

    def job_failed(
        self, job: Job, error: str, seconds: float, timed_out: bool = False
    ) -> None:
        """Retry with backoff while the budget lasts, else fail."""
        self._observe_latency(seconds)
        if timed_out:
            self._count("jobs_timed_out")
        if job.attempts <= self.max_retries_for(job):
            delay = self.retry.delay(job.attempts)
            self.queue.retry(job, delay)
            self._count("jobs_retried")
            self._update_depth()
            self._log.warning(
                "job %s attempt %d failed (%s); retrying in %.2fs",
                job.id, job.attempts, error, delay,
            )
        else:
            self.queue.fail(job, error)
            self._count("jobs_failed")
            self._update_depth()
            self._log.error(
                "job %s failed after %d attempts: %s", job.id, job.attempts, error
            )

    # -- introspection -----------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        return self.queue.get(job_id)

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "queue_depth": self.queue.depth,
            "running": self.queue.running,
            "workers": self.workers.threads,
            "accepting": not self.queue.closed,
            "code_version": self.salt,
            "git_sha": git_sha(),
        }

    def metrics_text(self) -> str:
        self._update_depth()
        return self.telemetry.metrics.to_prometheus()

    # -- catalog + reports (the self-updating dashboard) -------------

    @property
    def catalog(self) -> Catalog:
        """The sqlite catalog over this service's store, opened lazily."""
        with self._catalog_lock:
            if self._catalog is None:
                self._catalog = Catalog(self.store)
            return self._catalog

    def catalog_rows(
        self, experiment: Optional[str] = None, limit: Optional[int] = None
    ) -> list:
        """Refresh the catalog from the live store and query it.

        The refresh is incremental (only keys the catalog has not seen
        get their payload opened), so serving this per request is what
        makes the dashboard self-updating rather than a stale snapshot.
        """
        self._count("catalog_requests")
        catalog = self.catalog
        started = self._clock()
        with self._catalog_lock:
            catalog.refresh()
            rows = catalog.rows(experiment=experiment, limit=limit)
        self._observe_render(self._clock() - started)
        return rows

    def report_page(self, experiment: Optional[str] = None) -> Optional[str]:
        """Render the report index (``experiment=None``) or one page.

        Returns ``None`` when the named experiment has no stored runs —
        the HTTP layer turns that into a 404.
        """
        from repro.report.render import render_experiment, render_index

        self._count("report_requests")
        catalog = self.catalog
        started = self._clock()
        with self._catalog_lock:
            catalog.refresh()
            if experiment is None:
                html = render_index(catalog)
            else:
                html = render_experiment(catalog, experiment)
        self._observe_render(self._clock() - started)
        return html

    # -- lifecycle ---------------------------------------------------

    def start(self) -> "SimulationService":
        if self._started:
            raise InvariantError("service already started")
        self._started = True
        self.workers.start()
        self._log.info(
            "service started: %d workers, queue capacity %d, salt %s",
            self.workers.threads, self.queue.capacity, self.salt,
        )
        return self

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admitting, finish (or cancel) the backlog, flush the store."""
        self.queue.close()
        if drain:
            self.queue.drain(timeout=timeout)
        else:
            self.queue.cancel_pending()
        self.workers.stop(timeout=timeout)
        flushed = self.store.flush()
        self.telemetry.metrics.flush()
        self._log.info("service stopped (drain=%s, %d index entries)", drain, flushed)

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown(drain=False, timeout=10.0)
