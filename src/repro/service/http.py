"""Stdlib HTTP front end for the simulation service.

A thin translation layer — parse, submit, render — over
:class:`~repro.service.scheduler.SimulationService`, built on
``http.server.ThreadingHTTPServer`` so the service adds **zero new
dependencies**.  Handlers never simulate and never block on job
completion (SVC001 enforces this): a request either hits the result
store, joins the queue, or is rejected with explicit backpressure.

Endpoints::

    POST /jobs            {"experiment": "fig2", "quick": true, ...}
                          -> 200 cached | 202 accepted/duplicate
                          -> 400 bad request | 429 queue full
    GET  /jobs/<id>       job status (state, attempts, error, result key)
    GET  /results/<key>   stored result payload
    GET  /catalog         catalog rows (?experiment=fig4&limit=20)
    GET  /reports/        HTML report index, rendered from the live store
    GET  /reports/<name>  one experiment's HTML report (inline SVG)
    GET  /healthz         liveness + queue depth + code version
    GET  /metrics         Prometheus text exposition of the registry

``/catalog`` and ``/reports`` re-render from the live store on every
request (the catalog refresh is incremental), which is what turns the
job API into a self-updating results dashboard.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.errors import JobRejectedError, QueueFullError
from repro.service.scheduler import SimulationService
from repro.units import KiB

#: Request bodies above this size are rejected outright (a request spec
#: is a few hundred bytes; anything larger is abuse, not a sweep).
MAX_BODY_BYTES = 64 * KiB


class ServiceHTTPServer(ThreadingHTTPServer):
    """One HTTP listener bound to one :class:`SimulationService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: SimulationService) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service


def make_server(
    service: SimulationService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind a server for ``service`` (``port=0`` picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), service)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        obs.get_logger("service.http").debug(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._send_json(413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"})
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            self._send_json(400, {"error": f"invalid JSON body: {error}"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return payload

    # -- routes ------------------------------------------------------

    def do_POST(self) -> None:
        if self.path.rstrip("/") != "/jobs":
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        body = self._read_body()
        if body is None:
            return
        try:
            outcome = self.service.submit(
                experiment=body.get("experiment", ""),
                params=body.get("params") or {},
                quick=bool(body.get("quick", False)),
                priority=int(body.get("priority", 0)),
                timeout=body.get("timeout"),
                max_retries=body.get("max_retries"),
            )
        except JobRejectedError as error:
            self._send_json(400, {"error": str(error)})
            return
        except QueueFullError as error:
            # Explicit backpressure: the client owns the retry decision.
            self._send_json(
                429,
                {"error": str(error), "queue_depth": self.service.queue.depth},
            )
            return
        except (TypeError, ValueError) as error:
            self._send_json(400, {"error": f"bad request field: {error}"})
            return
        payload = outcome.describe()
        payload["result_url"] = f"/results/{outcome.key}"
        if outcome.status == "cached":
            self._send_json(200, payload)
        else:
            payload["job_url"] = f"/jobs/{outcome.job.id}"
            self._send_json(202, payload)

    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, self.service.health())
        elif path == "/metrics":
            self._send_text(
                200, self.service.metrics_text(), "text/plain; version=0.0.4"
            )
        elif path == "/catalog":
            self._get_catalog()
        elif path == "/reports":
            self._send_text(
                200, self.service.report_page(), "text/html; charset=utf-8"
            )
        elif path.startswith("/reports/"):
            self._get_report(path[len("/reports/"):])
        elif path.startswith("/jobs/"):
            self._get_job(path[len("/jobs/"):])
        elif path.startswith("/results/"):
            self._get_result(path[len("/results/"):])
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def _get_catalog(self) -> None:
        query = parse_qs(urlparse(self.path).query)
        experiment = query.get("experiment", [None])[0]
        try:
            limit_raw = query.get("limit", [None])[0]
            limit = int(limit_raw) if limit_raw is not None else None
        except ValueError:
            self._send_json(400, {"error": "limit must be an integer"})
            return
        rows = self.service.catalog_rows(experiment=experiment, limit=limit)
        self._send_json(
            200,
            {"experiment": experiment, "count": len(rows), "rows": rows},
        )

    def _get_report(self, name: str) -> None:
        # Static-bundle links say "<experiment>.html" / "index.html";
        # accept both spellings so the same pages work served live.
        if name.endswith(".html"):
            name = name[: -len(".html")]
        html = self.service.report_page(None if name == "index" else name)
        if html is None:
            self._send_json(
                404, {"error": f"no stored runs for experiment {name!r}"}
            )
            return
        self._send_text(200, html, "text/html; charset=utf-8")

    def _get_job(self, job_id: str) -> None:
        job = self.service.job(job_id)
        if job is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        payload = job.describe()
        if job.result_key is not None:
            payload["result_url"] = f"/results/{job.result_key}"
        self._send_json(200, payload)

    def _get_result(self, key: str) -> None:
        path = self.service.store.path_for(key) if key else None
        if path is None or not path.is_file():
            self._send_json(404, {"error": f"no stored result for key {key!r}"})
            return
        # Serve the stored payload verbatim; it is already JSON.
        self._send_text(200, path.read_text(), "application/json")
