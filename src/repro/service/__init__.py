"""Simulation-as-a-service: job queue, worker pool, result store, HTTP.

The one-shot CLI recomputes every experiment on every invocation; this
package turns the same deterministic sweeps into a long-running service
that *remembers*.  The paper's economics (Section IV: hardware redoes
work software can skip) applied to the harness itself:

* :mod:`repro.service.store` — content-addressed result store: a
  request ``(experiment, params, quick, code-version salt)`` hashes to
  a stable key; identical requests are O(1) file reads, not re-runs.
* :mod:`repro.service.queue` — bounded priority queue with explicit
  backpressure, in-flight deduplication, and backoff-aware claiming.
* :mod:`repro.service.scheduler` — retry policy and the
  :class:`SimulationService` facade owning the request lifecycle.
* :mod:`repro.service.workers` — worker threads executing jobs in
  forked children (killable timeouts, crash isolation) and merging
  child telemetry into the service registry.
* :mod:`repro.service.http` — stdlib ``ThreadingHTTPServer`` front end
  (``POST /jobs``, ``GET /jobs/<id>``, ``GET /results/<key>``,
  ``GET /catalog``, ``GET /reports/``, ``GET /healthz``,
  ``GET /metrics``).
* :mod:`repro.service.catalog` — sqlite3 index over the store
  (experiment / params / git SHA / salt / headline metrics) with
  trajectory and param-diff queries; backs the ``/catalog`` endpoint
  and the :mod:`repro.report` renderer.
* :mod:`repro.service.versioning` — the code-version salt and git SHA
  that keep stored results honest across code changes.

Quickstart::

    repro-experiment serve --store ./results --workers 4
    curl -XPOST localhost:8023/jobs -d '{"experiment":"table1","quick":true}'
"""

from repro.service.catalog import Catalog
from repro.service.queue import Job, JobQueue, JobRequest, JobState
from repro.service.scheduler import RetryPolicy, SimulationService, SubmitOutcome
from repro.service.store import (
    IndexEntry,
    RequestSpec,
    ResultStore,
    StoredResult,
    canonical_json,
)
from repro.service.versioning import code_version_salt, git_sha
from repro.service.workers import WorkerPool

__all__ = [
    "Catalog",
    "IndexEntry",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobState",
    "RequestSpec",
    "ResultStore",
    "RetryPolicy",
    "SimulationService",
    "StoredResult",
    "SubmitOutcome",
    "WorkerPool",
    "canonical_json",
    "code_version_salt",
    "git_sha",
]
