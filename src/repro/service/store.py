"""Content-addressed result store: simulation results keyed by request.

The paper's core economic argument (Section IV) is that hardware redoes
work — dead write-backs, dirty-miss amplification — that software
management can simply skip.  This store applies the same economics to
the reproduction itself: every experiment run is deterministic, so its
result is a pure function of ``(experiment, params, quick, code
version)``.  Hash that request into a stable key, persist the result
once, and every identical future request is an O(1) file read instead
of a re-simulation.

Keys are SHA-256 over a *canonical* JSON encoding of the request
(sorted keys, no whitespace), so the same request always produces the
same bytes and therefore the same key.  The code-version salt
(:mod:`repro.service.versioning`) is part of the request: editing
simulation code moves every key, so a store can never serve a result
the current code would not reproduce.

Layout on disk::

    <root>/ab/<key>.json     one result payload per request key
    <root>/index.jsonl       append-only log of stored keys (flushed)

Writes are atomic (temp file + rename) so a concurrently-serving HTTP
thread never observes a half-written payload.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.experiments.base import ExperimentResult
from repro.perf.export import to_jsonable
from repro.service.versioning import code_version_salt

#: Bump when the payload schema changes; part of the on-disk payload
#: (not the key) so old stores remain readable or clearly rejected.
STORE_FORMAT = 1


def canonical_json(value: Any) -> str:
    """Byte-stable JSON: sorted keys, minimal separators, pure ASCII."""
    return json.dumps(
        to_jsonable(value), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


@dataclass(frozen=True)
class RequestSpec:
    """One cacheable simulation request.

    ``params`` are the extra keyword arguments beyond ``quick`` (must be
    plain JSON-able data); ``salt`` defaults to the current tree's
    code-version salt so results can never outlive the code.
    """

    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)
    quick: bool = False
    salt: str = ""

    @classmethod
    def build(
        cls,
        experiment: str,
        params: Optional[Mapping[str, Any]] = None,
        quick: bool = False,
        salt: Optional[str] = None,
    ) -> "RequestSpec":
        return cls(
            experiment=experiment,
            params=dict(params or {}),
            quick=bool(quick),
            salt=salt if salt is not None else code_version_salt(),
        )

    def canonical(self) -> str:
        """The canonical request encoding that is hashed into the key."""
        return canonical_json(
            {
                "experiment": self.experiment,
                "params": dict(self.params),
                "quick": self.quick,
                "salt": self.salt,
            }
        )

    @property
    def key(self) -> str:
        return hashlib.sha256(self.canonical().encode()).hexdigest()


@dataclass
class StoredResult:
    """One payload read back from the store."""

    key: str
    request: Dict[str, Any]
    result: ExperimentResult
    meta: Dict[str, Any]


class ResultStore:
    """Disk-backed content-addressed store of experiment results.

    ``clock`` is injected (a callable returning seconds) so tests and
    deterministic replays control the ``created`` metadata; the default
    is the host wall-clock, which is provenance, not simulation input.
    """

    def __init__(
        self, root: "str | Path", clock: Callable[[], float] = time.time
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._pending_index: List[Dict[str, Any]] = []

    # -- paths -------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def index_path(self) -> Path:
        return self.root / "index.jsonl"

    # -- lookup ------------------------------------------------------

    def has(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __contains__(self, key: str) -> bool:
        return self.has(key)

    def get(self, key: str) -> Optional[StoredResult]:
        """The stored payload for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        result = ExperimentResult(
            name=payload["result"]["name"],
            title=payload["result"]["title"],
            data=payload["result"]["data"],
            sections=list(payload["result"]["sections"]),
        )
        return StoredResult(
            key=payload["key"],
            request=payload["request"],
            result=result,
            meta=payload.get("meta", {}),
        )

    def get_spec(self, spec: RequestSpec) -> Optional[StoredResult]:
        return self.get(spec.key)

    # -- storage -----------------------------------------------------

    def put(
        self,
        spec: RequestSpec,
        result: ExperimentResult,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> str:
        """Persist one result under its request key; returns the key."""
        key = spec.key
        payload = {
            "format": STORE_FORMAT,
            "key": key,
            "request": json.loads(spec.canonical()),
            "result": {
                "name": result.name,
                "title": result.title,
                "data": to_jsonable(result.data),
                "sections": list(result.sections),
            },
            "meta": {"created_unix": round(self._clock(), 3), **dict(meta or {})},
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)
        self._pending_index.append(
            {
                "key": key,
                "experiment": spec.experiment,
                "quick": spec.quick,
                "created_unix": payload["meta"]["created_unix"],
            }
        )
        return key

    def flush(self) -> int:
        """Append pending index entries to ``index.jsonl``; returns count."""
        if not self._pending_index:
            return 0
        lines = [json.dumps(entry, sort_keys=True) for entry in self._pending_index]
        with self.index_path.open("a") as handle:
            handle.write("\n".join(lines) + "\n")
        flushed = len(self._pending_index)
        self._pending_index.clear()
        return flushed

    # -- introspection -----------------------------------------------

    def keys(self) -> Iterator[str]:
        """Every stored key, from the on-disk payload files."""
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
