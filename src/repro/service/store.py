"""Content-addressed result store: simulation results keyed by request.

The paper's core economic argument (Section IV) is that hardware redoes
work — dead write-backs, dirty-miss amplification — that software
management can simply skip.  This store applies the same economics to
the reproduction itself: every experiment run is deterministic, so its
result is a pure function of ``(experiment, params, quick, code
version)``.  Hash that request into a stable key, persist the result
once, and every identical future request is an O(1) file read instead
of a re-simulation.

Keys are SHA-256 over a *canonical* JSON encoding of the request
(sorted keys, no whitespace), so the same request always produces the
same bytes and therefore the same key.  The code-version salt
(:mod:`repro.service.versioning`) is part of the request: editing
simulation code moves every key, so a store can never serve a result
the current code would not reproduce.

Layout on disk::

    <root>/ab/<key>.json     one result payload per request key
    <root>/index.jsonl       append-only log of stored keys (flushed)

Writes are atomic (temp file + rename) so a concurrently-serving HTTP
thread never observes a half-written payload.  The index is *advisory*:
payload files are the source of truth, and opening a store compacts the
index against them — duplicate keys collapse to the latest append,
truncated lines from a crash mid-append are dropped, and payloads whose
index line never made it to disk are recovered from their own metadata.
Consumers read the compacted view through :meth:`ResultStore.entries`
instead of re-parsing ``index.jsonl`` themselves.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.experiments.base import ExperimentResult
from repro.perf.export import to_jsonable
from repro.service.versioning import code_version_salt, git_sha

#: Bump when the payload schema changes; part of the on-disk payload
#: (not the key) so old stores remain readable or clearly rejected.
STORE_FORMAT = 1


def canonical_json(value: Any) -> str:
    """Byte-stable JSON: sorted keys, minimal separators, pure ASCII."""
    return json.dumps(
        to_jsonable(value), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


@dataclass(frozen=True)
class RequestSpec:
    """One cacheable simulation request.

    ``params`` are the extra keyword arguments beyond ``quick`` (must be
    plain JSON-able data); ``salt`` defaults to the current tree's
    code-version salt so results can never outlive the code.
    """

    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)
    quick: bool = False
    salt: str = ""

    @classmethod
    def build(
        cls,
        experiment: str,
        params: Optional[Mapping[str, Any]] = None,
        quick: bool = False,
        salt: Optional[str] = None,
    ) -> "RequestSpec":
        return cls(
            experiment=experiment,
            params=dict(params or {}),
            quick=bool(quick),
            salt=salt if salt is not None else code_version_salt(),
        )

    def canonical(self) -> str:
        """The canonical request encoding that is hashed into the key."""
        return canonical_json(
            {
                "experiment": self.experiment,
                "params": dict(self.params),
                "quick": self.quick,
                "salt": self.salt,
            }
        )

    @property
    def key(self) -> str:
        return hashlib.sha256(self.canonical().encode()).hexdigest()


@dataclass
class StoredResult:
    """One payload read back from the store."""

    key: str
    request: Dict[str, Any]
    result: ExperimentResult
    meta: Dict[str, Any]


@dataclass(frozen=True)
class IndexEntry:
    """One compacted line of ``index.jsonl``.

    ``salt`` and ``git_sha`` are provenance: they let the catalog group
    results by the code version (and commit) that produced them without
    opening every payload file.
    """

    key: str
    experiment: str
    quick: bool
    created_unix: float
    salt: str = ""
    git_sha: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "experiment": self.experiment,
            "quick": self.quick,
            "created_unix": self.created_unix,
            "salt": self.salt,
            "git_sha": self.git_sha,
        }

    @classmethod
    def from_json(cls, obj: Any) -> Optional["IndexEntry"]:
        """Parse one index line; ``None`` for malformed records."""
        if not isinstance(obj, dict):
            return None
        key = obj.get("key")
        experiment = obj.get("experiment")
        created = obj.get("created_unix")
        if (
            not isinstance(key, str)
            or not isinstance(experiment, str)
            or not isinstance(created, (int, float))
        ):
            return None
        sha = obj.get("git_sha")
        return cls(
            key=key,
            experiment=experiment,
            quick=bool(obj.get("quick", False)),
            created_unix=float(created),
            salt=str(obj.get("salt", "") or ""),
            git_sha=sha if isinstance(sha, str) and sha else None,
        )


class ResultStore:
    """Disk-backed content-addressed store of experiment results.

    ``clock`` is injected (a callable returning seconds) so tests and
    deterministic replays control the ``created`` metadata; the default
    is the host wall-clock, which is provenance, not simulation input.
    """

    def __init__(
        self, root: "str | Path", clock: Callable[[], float] = time.time
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._pending_index: List[IndexEntry] = []
        self._git_sha: Optional[str] = git_sha()
        self._entries: Dict[str, IndexEntry] = self._load_index()

    # -- paths -------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def index_path(self) -> Path:
        return self.root / "index.jsonl"

    # -- lookup ------------------------------------------------------

    def has(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __contains__(self, key: str) -> bool:
        return self.has(key)

    def get(self, key: str) -> Optional[StoredResult]:
        """The stored payload for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        result = ExperimentResult(
            name=payload["result"]["name"],
            title=payload["result"]["title"],
            data=payload["result"]["data"],
            sections=list(payload["result"]["sections"]),
        )
        return StoredResult(
            key=payload["key"],
            request=payload["request"],
            result=result,
            meta=payload.get("meta", {}),
        )

    def get_spec(self, spec: RequestSpec) -> Optional[StoredResult]:
        return self.get(spec.key)

    # -- storage -----------------------------------------------------

    def put(
        self,
        spec: RequestSpec,
        result: ExperimentResult,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> str:
        """Persist one result under its request key; returns the key."""
        key = spec.key
        meta = dict(meta or {})
        meta.setdefault("git_sha", self._git_sha)
        payload = {
            "format": STORE_FORMAT,
            "key": key,
            "request": json.loads(spec.canonical()),
            "result": {
                "name": result.name,
                "title": result.title,
                "data": to_jsonable(result.data),
                "sections": list(result.sections),
            },
            "meta": {"created_unix": round(self._clock(), 3), **meta},
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)
        self._pending_index.append(
            IndexEntry(
                key=key,
                experiment=spec.experiment,
                quick=spec.quick,
                created_unix=payload["meta"]["created_unix"],
                salt=spec.salt,
                git_sha=payload["meta"].get("git_sha"),
            )
        )
        return key

    def flush(self) -> int:
        """Append pending index entries to ``index.jsonl``; returns count."""
        if not self._pending_index:
            return 0
        lines = [
            json.dumps(entry.to_json(), sort_keys=True)
            for entry in self._pending_index
        ]
        with self.index_path.open("a") as handle:
            handle.write("\n".join(lines) + "\n")
        flushed = len(self._pending_index)
        for entry in self._pending_index:
            self._entries[entry.key] = entry
        self._pending_index.clear()
        return flushed

    # -- index -------------------------------------------------------

    def entries(self, experiment: Optional[str] = None) -> List[IndexEntry]:
        """The compacted index: one entry per stored key, append order.

        Includes results ``put`` but not yet flushed, so a live service
        and its dashboard agree on what exists.  This is the supported
        way to enumerate a store; nobody should re-parse ``index.jsonl``.
        """
        merged = dict(self._entries)
        for entry in self._pending_index:
            merged[entry.key] = entry
        return [
            entry
            for entry in merged.values()
            if experiment is None or entry.experiment == experiment
        ]

    def _load_index(self) -> Dict[str, IndexEntry]:
        """Read + compact ``index.jsonl`` against the payload files.

        Drops corrupt/truncated lines (crash mid-append), collapses
        duplicate keys to the latest append (overwritten results), drops
        entries whose payload vanished, and recovers payloads that never
        got an index line.  Rewrites the file only when something
        actually changed.
        """
        entries: Dict[str, IndexEntry] = {}
        dirty = False
        if self.index_path.is_file():
            for line in self.index_path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    dirty = True  # torn append: payload scan recovers it
                    continue
                entry = IndexEntry.from_json(obj)
                if entry is None:
                    dirty = True
                    continue
                if entry.key in entries:
                    dirty = True  # duplicate: later append supersedes
                entries[entry.key] = entry
        disk_keys = set(self.keys())
        for key in [key for key in entries if key not in disk_keys]:
            del entries[key]
            dirty = True
        for key in sorted(disk_keys - entries.keys()):
            recovered = self._entry_from_payload(key)
            if recovered is not None:
                entries[key] = recovered
                dirty = True
        if dirty:
            self._rewrite_index(entries)
        return entries

    def _entry_from_payload(self, key: str) -> Optional[IndexEntry]:
        """Rebuild one index entry from its payload file (crash recovery)."""
        try:
            payload = json.loads(self.path_for(key).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        request = payload.get("request")
        meta = payload.get("meta")
        if not isinstance(request, dict) or not isinstance(meta, dict):
            return None
        return IndexEntry.from_json(
            {
                "key": key,
                "experiment": request.get("experiment"),
                "quick": request.get("quick", False),
                "created_unix": meta.get("created_unix", 0.0),
                "salt": request.get("salt", ""),
                "git_sha": meta.get("git_sha"),
            }
        )

    def _rewrite_index(self, entries: Mapping[str, IndexEntry]) -> None:
        tmp = self.index_path.with_suffix(".tmp")
        lines = [
            json.dumps(entry.to_json(), sort_keys=True)
            for entry in entries.values()
        ]
        tmp.write_text("\n".join(lines) + "\n" if lines else "")
        os.replace(tmp, self.index_path)

    # -- introspection -----------------------------------------------

    def keys(self) -> Iterator[str]:
        """Every stored key, from the on-disk payload files."""
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
