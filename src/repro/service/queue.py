"""Bounded priority job queue with deduplication and explicit backpressure.

The queue is the service's admission-control point:

* **Bounded.**  ``submit`` on a full queue raises
  :class:`~repro.errors.QueueFullError` — rejection is explicit and
  immediate (HTTP 429 upstream) rather than an unbounded backlog that
  degrades every request.
* **Deduplicated.**  Two identical in-flight requests (same
  content-address key) share one job; the second submitter gets the
  first's job handle back instead of doubling the work.  This is the
  queue-level twin of the result store: the store dedupes across time,
  the queue dedupes across concurrent callers.
* **Prioritized.**  Higher ``priority`` claims first; FIFO within a
  priority level (stable submission sequence numbers break ties).
* **Retry-aware.**  A retried job returns to the pending set with a
  ``not_before`` eligibility time (the scheduler's backoff); ``claim``
  never hands out a job before its time.

All timing goes through an injected ``clock`` so unit tests drive
backoff and timeout logic with a fake clock instead of sleeping.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import QueueFullError
from repro.service.store import RequestSpec


class JobState(str, enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States in which a job occupies the queue (counts against capacity
#: and participates in dedup).
_LIVE_STATES = (JobState.PENDING, JobState.RUNNING)


@dataclass(frozen=True)
class JobRequest:
    """What a submitter asks for: a request spec plus scheduling knobs."""

    spec: RequestSpec
    priority: int = 0
    timeout: Optional[float] = None
    max_retries: Optional[int] = None  # None -> scheduler policy default


@dataclass
class Job:
    """One unit of work flowing through the service."""

    id: str
    request: JobRequest
    state: JobState = JobState.PENDING
    attempts: int = 0
    error: Optional[str] = None
    result_key: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Earliest clock time at which the job may be claimed (backoff).
    not_before: float = 0.0
    _seq: int = field(default=0, repr=False)

    @property
    def key(self) -> str:
        return self.request.spec.key

    @property
    def done(self) -> bool:
        return self.state not in _LIVE_STATES

    def describe(self) -> Dict[str, Any]:
        """JSON-able job summary for status endpoints."""
        return {
            "id": self.id,
            "experiment": self.request.spec.experiment,
            "key": self.key,
            "state": self.state.value,
            "priority": self.request.priority,
            "attempts": self.attempts,
            "error": self.error,
            "result_key": self.result_key,
        }


class JobQueue:
    """Thread-safe bounded queue of :class:`Job` objects.

    ``capacity`` bounds the *pending* set only: running jobs have
    already been admitted, so a full pipeline still finishes what it
    started while rejecting new load.
    """

    def __init__(
        self, capacity: int = 64, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._live_by_key: Dict[str, Job] = {}
        self._pending: List[Job] = []
        self._closed = False
        self._counter = 0

    # -- submission --------------------------------------------------

    def submit(self, request: JobRequest) -> Tuple[Job, bool]:
        """Admit one request; returns ``(job, deduplicated)``.

        Raises :class:`QueueFullError` when the pending set is at
        capacity and :class:`RuntimeError` after :meth:`close`.
        """
        with self._ready:
            if self._closed:
                raise RuntimeError("queue is closed to new submissions")
            existing = self._live_by_key.get(request.spec.key)
            if existing is not None:
                return existing, True
            if len(self._pending) >= self.capacity:
                raise QueueFullError(
                    f"queue at capacity ({self.capacity} pending); retry later"
                )
            self._counter += 1
            job = Job(
                id=f"job-{self._counter:06d}",
                request=request,
                submitted_at=self._clock(),
                _seq=self._counter,
            )
            self._jobs[job.id] = job
            self._live_by_key[job.key] = job
            self._pending.append(job)
            self._ready.notify()
            return job, False

    # -- claiming ----------------------------------------------------

    def _pop_eligible(self, now: float) -> Optional[Job]:
        eligible = [job for job in self._pending if job.not_before <= now]
        if not eligible:
            return None
        best = min(eligible, key=lambda j: (-j.request.priority, j._seq))
        self._pending.remove(best)
        return best

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Claim the best eligible pending job, blocking up to ``timeout``.

        Returns ``None`` when the wait expires, or immediately once the
        queue is closed and drained of pending work (the worker-exit
        signal).  ``timeout=0`` polls without blocking — the fake-clock
        unit-test mode.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._ready:
            while True:
                if self._closed and not self._pending:
                    return None
                now = self._clock()
                job = self._pop_eligible(now)
                if job is not None:
                    job.state = JobState.RUNNING
                    job.attempts += 1
                    job.started_at = now
                    return job
                wait: Optional[float] = None
                if self._pending:  # everything pending is backing off
                    wait = min(j.not_before for j in self._pending) - now
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                self._ready.wait(wait)

    # -- completion and retry ----------------------------------------

    def _finish(self, job: Job, state: JobState) -> None:
        job.state = state
        job.finished_at = self._clock()
        if self._live_by_key.get(job.key) is job:
            del self._live_by_key[job.key]
        self._ready.notify_all()

    def succeed(self, job: Job, result_key: str) -> None:
        with self._ready:
            job.result_key = result_key
            self._finish(job, JobState.SUCCEEDED)

    def fail(self, job: Job, error: str) -> None:
        with self._ready:
            job.error = error
            self._finish(job, JobState.FAILED)

    def retry(self, job: Job, delay: float) -> None:
        """Return a failed attempt to the pending set after ``delay``."""
        with self._ready:
            job.state = JobState.PENDING
            job.not_before = self._clock() + max(0.0, delay)
            self._pending.append(job)
            self._ready.notify()

    def cancel_pending(self) -> int:
        """Cancel every job still waiting; returns how many."""
        with self._ready:
            cancelled = list(self._pending)
            self._pending.clear()
            for job in cancelled:
                job.error = "cancelled at shutdown"
                self._finish(job, JobState.CANCELLED)
            return len(cancelled)

    # -- lifecycle and introspection ---------------------------------

    def close(self) -> None:
        """Stop admitting; claimers drain what is pending, then see None."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    @property
    def depth(self) -> int:
        """Jobs waiting to run (the backpressure signal)."""
        with self._lock:
            return len(self._pending)

    @property
    def running(self) -> int:
        with self._lock:
            return sum(
                1 for job in self._jobs.values() if job.state is JobState.RUNNING
            )

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is pending or running; True when drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._ready:
            while True:
                live = self._pending or any(
                    job.state is JobState.RUNNING for job in self._jobs.values()
                )
                if not live:
                    return True
                wait = 0.05
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    wait = min(wait, remaining)
                self._ready.wait(wait)
