"""Code-version salt: tie stored results to the code that produced them.

A content-addressed result is only valid as long as the simulator that
computed it is unchanged — the paper's dead-write-back argument applied
to ourselves: serving a stale cached result is the software equivalent
of a hardware cache writing back data nobody wants.  The salt folds
``repro.__version__`` together with the *source bytes* of the packages
that determine experiment output, so any edit to simulation code
changes every store key and forces honest recomputation.

``git_sha`` is best-effort provenance for perf-trajectory artifacts
(``--bench``): a point on the trajectory is only attributable if it
names the commit that produced it.
"""

from __future__ import annotations

import hashlib
import subprocess
from functools import lru_cache
from pathlib import Path
from typing import Optional, Sequence, Tuple

import repro

#: Packages (relative to the ``repro`` package root) whose source
#: participates in the salt.  Experiment output is a pure function of
#: these modules; docs/analysis/service plumbing is deliberately
#: excluded so refactors there do not invalidate stored results.
DEFAULT_SALT_PACKAGES: Tuple[str, ...] = (
    "autotm",
    "cache",
    "exec",
    "experiments",
    "graphs",
    "kernels",
    "memsys",
    "nn",
    "perf",
    "recsys",
    "units.py",
    "config.py",
)


def _package_root() -> Path:
    return Path(repro.__file__).resolve().parent


def _iter_sources(packages: Sequence[str]) -> Sequence[Path]:
    root = _package_root()
    files = []
    for name in packages:
        target = root / name
        if target.is_dir():
            files.extend(
                path
                for path in target.rglob("*.py")
                if "__pycache__" not in path.parts
            )
        elif target.is_file():
            files.append(target)
    return sorted(set(files))


@lru_cache(maxsize=4)
def _salt_for(packages: Tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    digest.update(repro.__version__.encode())
    root = _package_root()
    for path in _iter_sources(packages):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_version_salt(packages: Sequence[str] = DEFAULT_SALT_PACKAGES) -> str:
    """A short stable hash of ``repro.__version__`` + simulation sources.

    Identical trees produce identical salts; touching any file under
    ``packages`` (or bumping the version) produces a new one.  Cached
    per process — the tree is hashed at most once per package set.
    """
    return _salt_for(tuple(packages))


def git_sha() -> Optional[str]:
    """The repository HEAD commit, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_package_root(),
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None
