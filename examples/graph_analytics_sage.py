"""Case study 2: graph analytics — 2LM vs NUMA vs Sage.

Runs the four lonestar kernels over a web-scale (scaled) graph that does
not fit the DRAM cache, under three system configurations:

* 2LM       — Galois on the hardware DRAM cache (the paper's Figure 7b),
* NUMA      — 1LM with NVRAM as NUMA nodes: the true demand traffic
              baseline (Figure 8a),
* Sage      — semi-asymmetric mode: read-only graph in NVRAM, mutable
              state in DRAM, so NVRAM never sees a write (Section VII-A2).

Run:  python examples/graph_analytics_sage.py [--kernels pr bfs]
"""

import argparse

from repro.experiments.graphcommon import KERNELS, run_graph_kernel
from repro.experiments.platform import wdc_graph
from repro.perf.report import render_table
from repro.units import format_bytes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="+", default=list(KERNELS), choices=KERNELS)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()

    csr = wdc_graph(args.quick)
    print(
        f"Input: web graph, {csr.num_nodes} nodes, {csr.num_edges} edges, "
        f"{format_bytes(csr.binary_bytes)} binary (exceeds the scaled DRAM cache)"
    )

    rows = []
    for kernel in args.kernels:
        for mode in ("2lm", "numa", "sage"):
            run = run_graph_kernel(kernel, csr, mode=mode, quick=args.quick)
            rows.append(
                [
                    kernel,
                    mode,
                    f"{run.seconds:.2f}",
                    f"{run.total_moved_gb:.0f}",
                    f"{run.traffic.nvram_writes * 64 * run.scale / 1e9:.1f}",
                    f"{run.tags.hit_rate:.2f}" if mode == "2lm" else "-",
                ]
            )

    print()
    print(
        render_table(
            ["kernel", "mode", "runtime s", "moved GB", "NVRAM writes GB", "hit rate"],
            rows,
            title="Graph kernels on the cache-exceeding input (hardware-equivalent)",
        )
    )
    print(
        "\nSage keeps mutation in DRAM: zero NVRAM write traffic, no\n"
        "cache amplification — the paper's software-managed alternative."
    )


if __name__ == "__main__":
    main()
