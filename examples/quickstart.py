"""Quickstart: measure DRAM-cache access amplification in five minutes.

Builds the paper's platform (scaled 1/1024), runs the same read-only
microbenchmark against NVRAM twice — once in 1LM (app-direct, no cache)
and once in 2LM (hardware DRAM cache) — and shows why a 100 %-miss
workload moves 3x the data and loses a third of its bandwidth.

Run:  python examples/quickstart.py
"""

from repro.cache import DirectMappedCache
from repro.config import default_platform
from repro.kernels import Kernel, KernelSpec, run_kernel
from repro.memsys import AddressMap, CachedBackend, FlatBackend
from repro.perf.report import render_table
from repro.units import format_bytes


def main() -> None:
    platform = default_platform()  # 1/1024 of the paper's machine
    scale = platform.scale_factor
    print(
        f"Platform: {platform.sockets} sockets, "
        f"{format_bytes(platform.socket.dram_capacity)} DRAM + "
        f"{format_bytes(platform.socket.nvram_capacity)} NVRAM per socket "
        f"(scaled 1/{scale:.0f})"
    )

    # An array 2.2x the DRAM cache: every access misses in 2LM.
    num_lines = int(platform.socket.dram_capacity * 2.2) // platform.line_size
    spec = KernelSpec(Kernel.READ_ONLY, threads=24)

    # --- 1LM: app-direct, reads go straight to NVRAM ----------------------
    flat = FlatBackend(
        platform, AddressMap.nvram_only(platform.socket.nvram_capacity // 64)
    )
    direct = run_kernel(flat, spec, num_lines)

    # --- 2LM: memory mode, the DRAM cache intercepts every request --------
    cache = DirectMappedCache(platform.socket.dram_capacity)
    cached_backend = CachedBackend(platform, cache)
    run_kernel(cached_backend, spec, num_lines)  # warm-up pass
    cached = run_kernel(cached_backend, spec, num_lines)

    rows = [
        [
            "1LM (app direct)",
            f"{direct.traffic.amplification:.2f}x",
            f"{direct.effective_gb_per_s * scale:.1f}",
            f"{direct.traffic.total_bytes * scale / 1e9:.1f}",
        ],
        [
            "2LM (DRAM cache)",
            f"{cached.traffic.amplification:.2f}x",
            f"{cached.effective_gb_per_s * scale:.1f}",
            f"{cached.traffic.total_bytes * scale / 1e9:.1f}",
        ],
    ]
    print()
    print(
        render_table(
            ["mode", "amplification", "effective GB/s", "data moved GB"],
            rows,
            title="Read-only scan of an array 2.2x the DRAM cache (hw-equivalent)",
        )
    )
    print(
        f"\n2LM hit rate: {cached.tags.hit_rate:.1%} "
        f"(clean misses {cached.tags.clean_misses}, dirty {cached.tags.dirty_misses})"
    )
    print(
        "Every miss costs a tag-check DRAM read, an NVRAM fetch, and a "
        "DRAM fill — Table I's 3x amplification, live."
    )


if __name__ == "__main__":
    main()
