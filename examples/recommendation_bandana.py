"""Extension case study: recommendation-model embeddings on NVRAM.

The paper's introduction names DLRM-scale recommendation engines among
the workloads driving NVRAM adoption, and cites Bandana — storing
embedding tables in NVM with hot rows in DRAM — as prior art.  This
script builds that workload: 26 Zipf-skewed embedding tables totalling
~5x the DRAM capacity, looked up in batches, under three memory
configurations.

Run:  python examples/recommendation_bandana.py [--training]
"""

import argparse

from repro.config import default_platform
from repro.perf.report import render_table
from repro.recsys import (
    EmbeddingModel,
    generate_trace,
    plan_hot_rows,
    run_recsys,
)
from repro.units import format_bytes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--training",
        action="store_true",
        help="include gradient scatter-updates (default: inference)",
    )
    args = parser.parse_args()

    platform = default_platform()
    rows = int(5 * platform.socket.dram_capacity / (26 * 256))
    model = EmbeddingModel.dlrm_like(num_tables=26, rows_per_table=rows)
    print(
        f"Model: 26 embedding tables, {format_bytes(model.size_bytes)} total, "
        f"vs {format_bytes(platform.socket.dram_capacity)} DRAM"
    )

    print("Profiling row popularity and planning the Bandana placement...")
    profile = generate_trace(model, batch_size=128, num_batches=10, seed=1)
    trace = generate_trace(model, batch_size=128, num_batches=30, seed=2)
    placement = plan_hot_rows(
        model, profile, int(platform.socket.dram_capacity * 0.9)
    )
    print(
        f"  pinned {format_bytes(placement.hot_bytes)} of hot rows; "
        f"expected DRAM hit fraction "
        f"{placement.expected_hit_fraction(trace):.0%}"
    )

    rows_out = []
    for mode, kwargs in (
        ("2lm", {}),
        ("bandana", {"placement": placement}),
        ("nvram", {}),
    ):
        result = run_recsys(
            model, trace, platform, mode=mode, training=args.training, **kwargs
        )
        rows_out.append(
            [
                mode,
                f"{result.samples_per_second:.0f}",
                f"{result.dram_hit_fraction:.2f}",
                f"{result.traffic.amplification:.2f}x",
            ]
        )

    phase = "training" if args.training else "inference"
    print()
    print(
        render_table(
            ["mode", "samples/s (virtual)", "DRAM hit", "amplification"],
            rows_out,
            title=f"Embedding {phase}: hardware cache vs software placement",
        )
    )
    print(
        "\nPopularity-aware software placement beats the insert-on-miss\n"
        "hardware cache: it never wastes NVRAM bandwidth on fills for\n"
        "one-touch tail rows."
    )


if __name__ == "__main__":
    main()
