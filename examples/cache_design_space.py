"""Design-space exploration: would a different DRAM cache have helped?

Sweeps the cache organization — direct-mapped vs set-associative,
Dirty Data Optimization on/off, insert-on-write-miss vs write-around —
against two adversarial microbenchmark mixes, printing the access
amplification and effective bandwidth of each design.  This extends the
paper's discussion (Section VII) with quantitative what-ifs.

Run:  python examples/cache_design_space.py
"""

from repro.cache import DirectMappedCache, SetAssociativeCache
from repro.config import default_platform
from repro.kernels import Kernel, KernelSpec, run_kernel
from repro.memsys import CachedBackend, StoreType
from repro.perf.report import render_table


def designs(capacity):
    yield "direct-mapped (Cascade Lake)", DirectMappedCache(capacity)
    yield "direct-mapped, no DDO", DirectMappedCache(capacity, ddo_enabled=False)
    yield "direct-mapped, write-around", DirectMappedCache(
        capacity, insert_on_write_miss=False
    )
    yield "2-way LRU", SetAssociativeCache(capacity, ways=2)
    yield "8-way LRU", SetAssociativeCache(capacity, ways=8)


WORKLOADS = {
    "stream read (100% miss)": (Kernel.READ_ONLY, StoreType.STANDARD, Kernel.READ_ONLY),
    "stream write NT (100% dirty miss)": (
        Kernel.WRITE_ONLY,
        StoreType.NONTEMPORAL,
        Kernel.WRITE_ONLY,
    ),
    "read-modify-write": (
        Kernel.READ_MODIFY_WRITE,
        StoreType.STANDARD,
        Kernel.WRITE_ONLY,
    ),
}


def main() -> None:
    platform = default_platform()
    scale = platform.scale_factor
    capacity = platform.socket.dram_capacity
    num_lines = int(capacity * 2.2) // platform.line_size

    for workload, (kernel, store, primer) in WORKLOADS.items():
        rows = []
        for name, cache in designs(capacity):
            backend = CachedBackend(platform, cache)
            run_kernel(
                backend, KernelSpec(primer, threads=24), num_lines
            )  # prime the cache state
            result = run_kernel(
                backend,
                KernelSpec(kernel, store_type=store, threads=24),
                num_lines,
            )
            rows.append(
                [
                    name,
                    f"{result.traffic.amplification:.2f}x",
                    f"{result.effective_gb_per_s * scale:.1f}",
                    f"{result.tags.hit_rate:.2f}",
                ]
            )
        print(
            render_table(
                ["design", "amplification", "effective GB/s", "hit rate"],
                rows,
                title=f"Workload: {workload} (array 2.2x cache, hw-equivalent)",
            )
        )
        print()


if __name__ == "__main__":
    main()
