"""Case study 1: CNN training — hardware cache vs software management.

Trains one iteration of a (scaled) DenseNet 264 whose footprint exceeds
the DRAM cache, first in 2LM and then under AutoTM's ILP-optimized
tensor placement, and compares runtime and per-device traffic — the
paper's Table II and Figure 10 in one script.

Run:  python examples/cnn_training_2lm_vs_autotm.py [--network resnet200]
"""

import argparse

from repro.autotm import PlacementMode, PlacementProblem, execute_autotm, solve_ilp
from repro.cache import DirectMappedCache
from repro.config import default_platform
from repro.memsys import CachedBackend
from repro.nn import build_training_graph, execute_iteration, plan_memory
from repro.nn.networks import densenet264, inception_v4, resnet200
from repro.perf.report import render_table
from repro.units import format_bytes

BUILDERS = {
    "densenet264": lambda: densenet264(3),
    "resnet200": lambda: resnet200(3),
    "inception_v4": lambda: inception_v4(3),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", choices=sorted(BUILDERS), default="densenet264")
    args = parser.parse_args()

    platform = default_platform()
    scale = platform.scale_factor

    print(f"Building {args.network} (batch standing in for the paper's 3072)...")
    graph = BUILDERS[args.network]()
    training = build_training_graph(graph)
    plan = plan_memory(graph, alignment=1024)
    print(
        f"  {len(graph.ops)} kernels, footprint {format_bytes(plan.total_bytes)} "
        f"vs {format_bytes(platform.socket.dram_capacity)} DRAM cache"
    )

    print("Running one iteration in 2LM (after a warm-up iteration)...")
    cache = DirectMappedCache(platform.socket.dram_capacity)
    backend = CachedBackend(platform, cache)
    execute_iteration(plan, backend)
    cached = execute_iteration(plan, backend)

    print("Solving AutoTM placement (scipy/HiGHS ILP) and re-running in 1LM...")
    budget = int(platform.socket.dram_capacity * 0.8)
    problem = PlacementProblem.build(training, platform, budget, capacity_stride=4)
    placement = solve_ilp(problem)
    print(
        f"  placements: {placement.count(PlacementMode.DRAM)} DRAM, "
        f"{placement.count(PlacementMode.STASH)} stashed, "
        f"{placement.count(PlacementMode.NVRAM)} NVRAM"
    )
    autotm = execute_autotm(training, placement, platform)

    def gb(lines: int) -> str:
        return f"{lines * 64 * scale / 1e9:.0f}"

    t2, ta = cached.traffic, autotm.traffic
    print()
    print(
        render_table(
            ["mode", "DRAM rd", "DRAM wr", "NVRAM rd", "NVRAM wr", "runtime s"],
            [
                ["2LM", gb(t2.dram_reads), gb(t2.dram_writes), gb(t2.nvram_reads),
                 gb(t2.nvram_writes), f"{cached.seconds:.0f}"],
                ["AutoTM", gb(ta.dram_reads), gb(ta.dram_writes), gb(ta.nvram_reads),
                 gb(ta.nvram_writes), f"{autotm.seconds:.0f}"],
            ],
            title=f"{args.network}: GB moved (hardware-equivalent) per iteration",
        )
    )
    print(f"\nAutoTM speedup: {cached.seconds / autotm.seconds:.2f}x")
    print(
        f"NVRAM traffic ratio (AutoTM / 2LM): "
        f"{(ta.nvram_reads + ta.nvram_writes) / (t2.nvram_reads + t2.nvram_writes):.2f} "
        "(the paper reports 50-60%)"
    )


if __name__ == "__main__":
    main()
