"""Legacy installer shim for offline environments without `wheel`.

`pip install -e .` is the preferred route; this file lets
`python setup.py develop` work when pip's build isolation cannot
download setuptools/wheel.
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "repro-experiment = repro.experiments.cli:main",
        ]
    }
)
